//! Per-domain transaction queues (the proposed microarchitecture keeps
//! one physical queue per security domain, Section 5.1).

use crate::domain::DomainId;
use crate::txn::{Transaction, TxnId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Returned when a queue is at capacity; the producer must apply
/// back-pressure (stall the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    pub domain: DomainId,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction queue for {} is full", self.domain)
    }
}

impl Error for QueueFull {}

/// A bounded FIFO of transactions for one security domain, with
/// store-to-load forwarding metadata.
#[derive(Debug, Clone)]
pub struct TransactionQueue {
    domain: DomainId,
    capacity: usize,
    entries: VecDeque<Transaction>,
    /// Peak occupancy, for statistics.
    high_water: usize,
}

impl TransactionQueue {
    pub fn new(domain: DomainId, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        TransactionQueue {
            domain,
            capacity,
            entries: VecDeque::with_capacity(capacity),
            high_water: 0,
        }
    }

    pub fn domain(&self) -> DomainId {
        self.domain
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Enqueues a transaction.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when at capacity; the transaction is not
    /// enqueued.
    pub fn push(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull { domain: self.domain });
        }
        debug_assert_eq!(txn.domain, self.domain, "transaction routed to wrong domain queue");
        self.entries.push_back(txn);
        self.high_water = self.high_water.max(self.entries.len());
        Ok(())
    }

    /// The oldest transaction, if any.
    pub fn front(&self) -> Option<&Transaction> {
        self.entries.front()
    }

    /// Removes and returns the oldest transaction.
    pub fn pop(&mut self) -> Option<Transaction> {
        self.entries.pop_front()
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.entries.iter()
    }

    /// Finds the oldest transaction satisfying `pred` and removes it
    /// (the FS scheduler "scans a few bits in one queue to look for a
    /// transaction that meets specific criteria").
    pub fn take_first<F>(&mut self, pred: F) -> Option<Transaction>
    where
        F: FnMut(&Transaction) -> bool,
    {
        let pred = pred;
        let idx = self.entries.iter().position(pred)?;
        self.entries.remove(idx)
    }

    /// Removes a transaction by id (used when a store is squashed by
    /// forwarding).
    pub fn remove(&mut self, id: TxnId) -> Option<Transaction> {
        let idx = self.entries.iter().position(|t| t.id == id)?;
        self.entries.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_dram::geometry::{BankId, ChannelId, ColId, Location, RankId, RowId};

    fn loc(bank: u8) -> Location {
        Location {
            channel: ChannelId(0),
            rank: RankId(0),
            bank: BankId(bank),
            row: RowId(0),
            col: ColId(0),
        }
    }

    fn txn(id: u64, bank: u8) -> Transaction {
        Transaction::read(TxnId(id), DomainId(0), loc(bank), 0)
    }

    #[test]
    fn fifo_order() {
        let mut q = TransactionQueue::new(DomainId(0), 4);
        q.push(txn(1, 0)).unwrap();
        q.push(txn(2, 1)).unwrap();
        assert_eq!(q.pop().unwrap().id, TxnId(1));
        assert_eq!(q.pop().unwrap().id, TxnId(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut q = TransactionQueue::new(DomainId(0), 2);
        q.push(txn(1, 0)).unwrap();
        q.push(txn(2, 0)).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(txn(3, 0)), Err(QueueFull { domain: DomainId(0) }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_first_respects_order_and_predicate() {
        let mut q = TransactionQueue::new(DomainId(0), 8);
        for (id, bank) in [(1, 0), (2, 1), (3, 0), (4, 2)] {
            q.push(txn(id, bank)).unwrap();
        }
        let got = q.take_first(|t| t.loc.bank == BankId(0)).unwrap();
        assert_eq!(got.id, TxnId(1));
        let got = q.take_first(|t| t.loc.bank == BankId(0)).unwrap();
        assert_eq!(got.id, TxnId(3));
        assert_eq!(q.len(), 2);
        assert!(q.take_first(|t| t.loc.bank == BankId(7)).is_none());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = TransactionQueue::new(DomainId(0), 8);
        q.push(txn(1, 0)).unwrap();
        q.push(txn(2, 0)).unwrap();
        q.pop();
        q.push(txn(3, 0)).unwrap();
        assert_eq!(q.high_water(), 2);
    }
}
