//! The sandbox prefetcher (Pugsley et al., HPCA 2014) used by the FS
//! prefetch optimisation (Section 5.2).
//!
//! Candidate stride offsets are evaluated one at a time inside a
//! *sandbox*: while offset `o` is under test, every demand access `A`
//! inserts `A + o` into the sandbox set, and accesses that hit the
//! sandbox score the candidate. Candidates whose score clears a
//! threshold become *active* generators; up to four high-confidence
//! prefetch addresses are kept in a small queue beside the transaction
//! queue, consumed whenever the domain would otherwise issue a dummy.

use fsmc_dram::geometry::LineAddr;
use std::collections::{HashSet, VecDeque};

/// Offsets evaluated by the sandbox, in evaluation order. Small strides
/// catch within-row walks; the +/-128 and +/-256 line strides catch the
/// row-to-row progress of streaming miss streams (128 lines = one 8 KB
/// row), which is where a post-LLC prefetcher gets its lookahead.
const CANDIDATE_OFFSETS: [i64; 8] = [1, -1, 2, 128, -128, 256, 4, -2];
/// Demand accesses per evaluation round.
const EVAL_WINDOW: u32 = 256;
/// Sandbox hits required to accept a candidate.
const ACCEPT_THRESHOLD: u32 = 64;
/// Maximum simultaneously active offsets.
const MAX_ACTIVE: usize = 4;
/// Prefetch-queue depth ("a few-entry prefetch queue").
const QUEUE_DEPTH: usize = 8;
/// Sandbox capacity (evictions are wholesale at round end).
const SANDBOX_CAP: usize = 2048;

/// Per-domain sandbox prefetcher.
#[derive(Debug, Clone)]
pub struct SandboxPrefetcher {
    /// Index into [`CANDIDATE_OFFSETS`] currently under evaluation.
    candidate: usize,
    sandbox: HashSet<u64>,
    score: u32,
    accesses_in_round: u32,
    active: Vec<i64>,
    queue: VecDeque<LineAddr>,
    issued: u64,
}

impl Default for SandboxPrefetcher {
    fn default() -> Self {
        SandboxPrefetcher::new()
    }
}

impl SandboxPrefetcher {
    pub fn new() -> Self {
        SandboxPrefetcher {
            candidate: 0,
            sandbox: HashSet::with_capacity(SANDBOX_CAP),
            score: 0,
            accesses_in_round: 0,
            active: Vec::new(),
            queue: VecDeque::with_capacity(QUEUE_DEPTH),
            issued: 0,
        }
    }

    /// The offsets currently accepted as high-confidence.
    pub fn active_offsets(&self) -> &[i64] {
        &self.active
    }

    /// Total prefetch addresses handed out via
    /// [`SandboxPrefetcher::next_prefetch`].
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Feed one demand (miss) access into the prefetcher.
    pub fn on_access(&mut self, addr: LineAddr) {
        // Score the candidate under evaluation.
        if self.sandbox.contains(&addr.0) {
            self.score += 1;
        }
        let offset = CANDIDATE_OFFSETS[self.candidate];
        if self.sandbox.len() < SANDBOX_CAP {
            self.sandbox.insert(addr.0.wrapping_add_signed(offset));
        }
        self.accesses_in_round += 1;
        if self.accesses_in_round >= EVAL_WINDOW {
            self.finish_round();
        }
        // Generate prefetches from active offsets.
        for &o in &self.active {
            if self.queue.len() >= QUEUE_DEPTH {
                break;
            }
            let target = LineAddr(addr.0.wrapping_add_signed(o));
            if !self.queue.contains(&target) {
                self.queue.push_back(target);
            }
        }
    }

    fn finish_round(&mut self) {
        let offset = CANDIDATE_OFFSETS[self.candidate];
        if self.score >= ACCEPT_THRESHOLD && !self.active.contains(&offset) {
            if self.active.len() == MAX_ACTIVE {
                self.active.remove(0);
            }
            self.active.push(offset);
        } else if self.score < ACCEPT_THRESHOLD / 4 {
            // Confidence collapsed: demote the offset if it was active.
            self.active.retain(|&a| a != offset);
        }
        self.sandbox.clear();
        self.score = 0;
        self.accesses_in_round = 0;
        self.candidate = (self.candidate + 1) % CANDIDATE_OFFSETS.len();
    }

    /// Pops the next high-confidence prefetch address, if any.
    pub fn next_prefetch(&mut self) -> Option<LineAddr> {
        let a = self.queue.pop_front()?;
        self.issued += 1;
        Some(a)
    }

    /// Whether a prefetch is ready to issue.
    pub fn has_prefetch(&self) -> bool {
        !self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_activates_plus_one_and_prefetches() {
        let mut p = SandboxPrefetcher::new();
        for a in 0..2 * EVAL_WINDOW as u64 {
            p.on_access(LineAddr(a));
        }
        assert!(p.active_offsets().contains(&1), "active = {:?}", p.active_offsets());
        // Once active, new accesses enqueue prefetch targets.
        let before = p.has_prefetch();
        p.on_access(LineAddr(10_000));
        assert!(before || p.has_prefetch());
        let target = p.next_prefetch();
        assert!(target.is_some());
    }

    #[test]
    fn random_stream_activates_nothing() {
        let mut p = SandboxPrefetcher::new();
        // A multiplicative-congruential scramble: no small-stride structure.
        let mut x: u64 = 12345;
        for _ in 0..(CANDIDATE_OFFSETS.len() as u32 * EVAL_WINDOW) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.on_access(LineAddr(x >> 16));
        }
        assert!(p.active_offsets().is_empty(), "active = {:?}", p.active_offsets());
        assert!(!p.has_prefetch());
    }

    #[test]
    fn queue_is_bounded_and_deduplicated() {
        let mut p = SandboxPrefetcher::new();
        for a in 0..2 * EVAL_WINDOW as u64 {
            p.on_access(LineAddr(a));
        }
        for _ in 0..100 {
            p.on_access(LineAddr(500));
        }
        let mut drained = 0;
        while p.next_prefetch().is_some() {
            drained += 1;
            assert!(drained <= QUEUE_DEPTH);
        }
    }

    #[test]
    fn issued_counter_advances() {
        let mut p = SandboxPrefetcher::new();
        for a in 0..2 * EVAL_WINDOW as u64 {
            p.on_access(LineAddr(a));
        }
        let mut n = 0;
        while p.next_prefetch().is_some() {
            n += 1;
        }
        assert_eq!(p.issued(), n);
    }
}
