//! Constraint construction: the paper's Equations 1–4 plus the same-bank
//! worst case, generalised over anchor and partition level.

use super::offsets::{Anchor, SlotOffsets};
use fsmc_dram::TimingParams;
use std::fmt;

/// Spatial-partitioning level assumed by a pipeline (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionLevel {
    /// Consecutive slots target different ranks (rank partitioning).
    Rank,
    /// Slots may share a rank but never a bank (bank partitioning).
    Bank,
    /// Slots may target the same bank (no partitioning).
    None,
}

/// One inequality on the slot pitch `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// No positive multiple of `l` may equal `diff` — two slots `m` apart
    /// would otherwise put two commands on the bus in the same cycle
    /// (Equation 1).
    ForbiddenMultiple { diff: u64, why: &'static str },
    /// Slots `slots_apart` apart must satisfy
    /// `slots_apart * l >= min` (Equations 2–4 and bus-gap rules).
    MinGap { slots_apart: u32, min: i64, why: &'static str },
}

impl Constraint {
    /// Whether pitch `l` satisfies this constraint.
    pub fn satisfied_by(&self, l: u32) -> bool {
        match *self {
            Constraint::ForbiddenMultiple { diff, .. } => diff == 0 || diff % l as u64 != 0,
            Constraint::MinGap { slots_apart, min, .. } => (slots_apart as i64) * (l as i64) >= min,
        }
    }

    /// The human-readable reason this constraint exists.
    pub fn why(&self) -> &'static str {
        match self {
            Constraint::ForbiddenMultiple { why, .. } | Constraint::MinGap { why, .. } => why,
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Constraint::ForbiddenMultiple { diff, why } => {
                write!(f, "(k-k')*l != {diff} [{why}]")
            }
            Constraint::MinGap { slots_apart, min, why } => {
                write!(f, "{slots_apart}*l >= {min} [{why}]")
            }
        }
    }
}

/// The (ACT, CAS, data) offsets of one slot direction.
type DirOffsets = (i64, i64, i64);

/// All (earlier, later) direction pairs for two slots; earlier offsets
/// first in the tuple.
fn direction_pairs(o: &SlotOffsets) -> [(DirOffsets, DirOffsets, &'static str); 4] {
    let r = (o.read_act, o.read_cas, o.read_data);
    let w = (o.write_act, o.write_cas, o.write_data);
    [
        (r, r, "read then read"),
        (r, w, "read then write"),
        (w, r, "write then read"),
        (w, w, "write then write"),
    ]
}

/// Builds the full constraint set for `anchor` at `level`.
///
/// `same_rank_period` / `same_bank_period` give the *smallest slot
/// distance* at which two slots can share a rank / bank. For the paper's
/// idealised analyses these are: rank partitioning — same rank only at
/// distance `n` (callers pass `u32::MAX` to reproduce the paper's
/// n-independent solution); bank partitioning — same rank at distance 1,
/// same bank never; no partitioning — same bank at distance 1.
pub fn build_constraints(
    t: &TimingParams,
    anchor: Anchor,
    same_rank_from: u32,
    same_bank_from: u32,
) -> Vec<Constraint> {
    let o = SlotOffsets::for_anchor(anchor, t);
    let mut cs: Vec<Constraint> = Vec::new();

    // --- Equation 1: command-bus collision freedom. Any two command
    // offsets from different slots must never land in the same cycle.
    let cmd = o.command_offsets();
    for &a in &cmd {
        for &b in &cmd {
            let diff = (a - b).unsigned_abs();
            if diff != 0 {
                cs.push(Constraint::ForbiddenMultiple {
                    diff,
                    why: "command-bus conflict (Eq. 1)",
                });
            }
        }
    }

    // --- Data-bus occupancy: consecutive transfers must not overlap, and
    // cross-rank transfers need the tRTRS switch gap.
    let burst = t.t_burst as i64;
    let rtrs = t.t_rtrs as i64;
    for s in 1..=4u32 {
        for (prev, next, _why) in direction_pairs(&o) {
            let shift = prev.2 - next.2; // earlier slot's data offset minus later's
            let min_overlap = burst + shift;
            cs.push(Constraint::MinGap {
                slots_apart: s,
                min: min_overlap,
                why: "data-bus overlap",
            });
            // Nearby slots can always belong to different ranks (round-robin
            // rank partitioning guarantees it; other levels permit it), so
            // the tRTRS switch gap applies at every small distance.
            cs.push(Constraint::MinGap {
                slots_apart: s,
                min: min_overlap + rtrs,
                why: "tRTRS rank switch",
            });
        }
    }

    // --- Same-rank constraints (Equations 2–4), applied from the first
    // slot distance at which two slots can share a rank.
    if same_rank_from != u32::MAX {
        let start = same_rank_from.max(1);
        for s in start..start + 4 {
            for (prev, next, _why) in direction_pairs(&o) {
                // Eq. 2: tRRD between activates.
                cs.push(Constraint::MinGap {
                    slots_apart: s,
                    min: t.t_rrd as i64 + prev.0 - next.0,
                    why: "tRRD (Eq. 2)",
                });
            }
            // CAS-to-CAS spacing, enumerated by direction pair. Same-rank
            // slots may land in one bank group, so the solver takes the
            // long spacing tCCD_L as the worst case (equal to tCCD_S on
            // parts without bank groups). The runtime hazard tracker uses
            // the same conservative floor, so cross-domain slot admission
            // never depends on which bank group a domain happened to hit —
            // a prerequisite for the non-interference argument.
            cs.push(Constraint::MinGap {
                slots_apart: s,
                min: t.t_ccd_l as i64,
                why: "tCCD_L same-type CAS",
            });
            cs.push(Constraint::MinGap {
                slots_apart: s,
                min: t.rd_to_wr_same_rank() as i64 + o.read_cas - o.write_cas,
                why: "read-to-write turnaround (Eq. 4a)",
            });
            cs.push(Constraint::MinGap {
                slots_apart: s,
                min: t.wr_to_rd_same_rank() as i64 + o.write_cas - o.read_cas,
                why: "write-to-read turnaround (Eq. 4b)",
            });
        }
        // Eq. 3: tFAW — the 4th activate after any activate in the same
        // rank. With same-rank slots every `start` slots, activates i and
        // i+4 (same rank) are 4*start slots apart.
        for (prev, next, _why) in direction_pairs(&o) {
            cs.push(Constraint::MinGap {
                slots_apart: 4 * start,
                min: t.t_faw as i64 + prev.0 - next.0,
                why: "tFAW (Eq. 3)",
            });
        }
    }

    // --- Same-bank worst case (Section 4.3): back-to-back accesses to
    // different rows of one bank.
    if same_bank_from != u32::MAX {
        let start = same_bank_from.max(1);
        for s in start..start + 2 {
            for (prev, next, why) in direction_pairs(&o) {
                let was_write = why.starts_with("write then");
                let turnaround = if was_write {
                    // Previous access was a write: ACT-to-ACT must cover
                    // tRCD + write recovery + tRP = 43 — but never less
                    // than tRC, since the auto-precharge also waits for
                    // tRAS (the write-recovery path only dominates when
                    // tWR is long relative to tRAS).
                    t.same_bank_wr_turnaround().max(t.t_rc) as i64
                } else {
                    t.t_rc as i64
                };
                cs.push(Constraint::MinGap {
                    slots_apart: s,
                    min: turnaround + prev.0 - next.0,
                    why: if was_write {
                        "same-bank write turnaround (Sec. 4.3)"
                    } else {
                        "same-bank tRC"
                    },
                });
            }
        }
    }

    cs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_partitioned_data_anchor_forbids_paper_diffs() {
        let t = TimingParams::ddr3_1600();
        let cs = build_constraints(&t, Anchor::FixedPeriodicData, u32::MAX, u32::MAX);
        let forbidden: Vec<u64> = cs
            .iter()
            .filter_map(|c| match c {
                Constraint::ForbiddenMultiple { diff, .. } => Some(*diff),
                _ => None,
            })
            .collect();
        // Equation 1: diffs {5, 6, 11, 17} (and 16/22-5=... the full set of
        // pairwise diffs of {-22,-16,-11,-5} = {5,6,11,17,16? no:
        // |-22+16|=6, |-22+11|=11, |-22+5|=17, |-16+11|=5, |-16+5|=11,
        // |-11+5|=6}).
        for d in [5u64, 6, 11, 17] {
            assert!(forbidden.contains(&d), "missing forbidden diff {d}");
        }
        assert!(!forbidden.contains(&0));
    }

    #[test]
    fn constraint_satisfaction_logic() {
        let c = Constraint::ForbiddenMultiple { diff: 12, why: "t" };
        assert!(!c.satisfied_by(6)); // 2*6 = 12 collides
        assert!(!c.satisfied_by(12));
        assert!(c.satisfied_by(7));
        let g = Constraint::MinGap { slots_apart: 2, min: 15, why: "t" };
        assert!(!g.satisfied_by(7));
        assert!(g.satisfied_by(8));
    }

    #[test]
    fn display_mentions_reason() {
        let c = Constraint::MinGap {
            slots_apart: 1,
            min: 21,
            why: "write-to-read turnaround (Eq. 4b)",
        };
        assert!(c.to_string().contains("Eq. 4b"));
    }
}
