//! Minimum-pitch search over the constraint sets.

use super::constraints::{build_constraints, Constraint, PartitionLevel};
use super::offsets::{Anchor, SlotOffsets};
use fsmc_dram::TimingParams;
use std::error::Error;
use std::fmt;

/// Upper bound on the pitch search; anything above this means the
/// constraint set is inconsistent (no real DDR3 pipeline needs more).
const MAX_PITCH: u32 = 512;

/// No feasible pitch was found below `MAX_PITCH` (512).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveError {
    pub anchor: Anchor,
    pub level: PartitionLevel,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no feasible slot pitch below {MAX_PITCH} for {:?}/{:?}", self.anchor, self.level)
    }
}

impl Error for SolveError {}

/// A solved pipeline: the minimum slot pitch and everything needed to
/// materialise a schedule from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSolution {
    /// Slot pitch in DRAM cycles: one transaction slot every `l` cycles.
    pub l: u32,
    pub anchor: Anchor,
    pub level: PartitionLevel,
    pub offsets: SlotOffsets,
}

impl PipelineSolution {
    /// The per-thread service interval `Q = n * l` (Section 3.1).
    pub fn interval_q(&self, threads: u8) -> u64 {
        threads as u64 * self.l as u64
    }

    /// Theoretical peak data-bus utilization: `tBURST / l`.
    pub fn peak_data_utilization(&self, t: &TimingParams) -> f64 {
        t.t_burst as f64 / self.l as f64
    }
}

fn partition_distances(level: PartitionLevel, same_rank_from: u32) -> (u32, u32) {
    match level {
        // Rank partitioning: slots share a rank only every `n` slots (the
        // paper's idealised analysis passes u32::MAX, i.e. never nearby).
        PartitionLevel::Rank => (same_rank_from, u32::MAX),
        // Bank partitioning: any two slots may share a rank, never a bank.
        PartitionLevel::Bank => (1, u32::MAX),
        // No partitioning: any two slots may share a bank.
        PartitionLevel::None => (1, 1),
    }
}

/// Solves for the minimum pitch with the paper's idealised partition
/// assumptions (rank partitioning with "enough" threads).
///
/// # Errors
///
/// Returns [`SolveError`] if no pitch below an internal bound satisfies
/// the constraints (indicates inconsistent timing parameters).
pub fn solve(
    t: &TimingParams,
    anchor: Anchor,
    level: PartitionLevel,
) -> Result<PipelineSolution, SolveError> {
    let (srf, sbf) = partition_distances(level, u32::MAX);
    solve_raw(t, anchor, level, srf, sbf)
}

/// Solves for the minimum pitch for an `n`-thread system, additionally
/// enforcing the same-rank constraints at slot distance `n` under rank
/// partitioning (the paper's Section 7 sensitivity discussion: with six
/// or fewer ranks a thread's consecutive accesses to its own rank start
/// violating the 43-cycle worst case).
pub fn solve_for_threads(
    t: &TimingParams,
    anchor: Anchor,
    level: PartitionLevel,
    threads: u8,
) -> Result<PipelineSolution, SolveError> {
    assert!(threads > 0, "threads must be non-zero");
    let (srf, sbf) = partition_distances(level, threads as u32);
    solve_raw(t, anchor, level, srf, sbf)
}

fn solve_raw(
    t: &TimingParams,
    anchor: Anchor,
    level: PartitionLevel,
    same_rank_from: u32,
    same_bank_from: u32,
) -> Result<PipelineSolution, SolveError> {
    let cs = build_constraints(t, anchor, same_rank_from, same_bank_from);
    match minimum_pitch(&cs) {
        Some(l) => {
            Ok(PipelineSolution { l, anchor, level, offsets: SlotOffsets::for_anchor(anchor, t) })
        }
        None => Err(SolveError { anchor, level }),
    }
}

/// Searches all anchors and returns the solution with the smallest pitch
/// (ties break toward fixed periodic data, matching the paper's choice).
pub fn solve_best(t: &TimingParams, level: PartitionLevel) -> Result<PipelineSolution, SolveError> {
    Anchor::all()
        .into_iter()
        .filter_map(|a| solve(t, a, level).ok())
        .min_by_key(|s| s.l)
        .ok_or(SolveError { anchor: Anchor::FixedPeriodicData, level })
}

/// The degraded-mode pipeline: the widest-assumption schedule the
/// scheduler falls back to after a runtime timing violation (or when the
/// requested variant fails to solve). Adjacent slots are assumed to hit
/// the *same bank*, so the pitch covers every same-bank, same-rank and
/// channel turnaround regardless of the spatial partition actually in
/// force — any transaction mix is certified, at the cost of throughput.
///
/// # Errors
///
/// Returns [`SolveError`] if even these constraints admit no pitch below
/// the search bound (the timing parameters are internally inconsistent).
pub fn conservative_pipeline(
    t: &TimingParams,
    threads: u8,
) -> Result<PipelineSolution, SolveError> {
    assert!(threads > 0, "threads must be non-zero");
    Anchor::all()
        .into_iter()
        .filter_map(|a| solve_raw(t, a, PartitionLevel::None, 1, 1).ok())
        .min_by_key(|s| s.l)
        .ok_or(SolveError { anchor: Anchor::FixedPeriodicRas, level: PartitionLevel::None })
}

fn minimum_pitch(cs: &[Constraint]) -> Option<u32> {
    (1..=MAX_PITCH).find(|&l| cs.iter().all(|c| c.satisfied_by(l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn rank_partitioned_data_anchor_is_7() {
        // Section 3.1 "Bottomline": the smallest l >= 6 fulfilling the
        // equations is 7.
        let s = solve(&t(), Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        assert_eq!(s.l, 7);
        assert_eq!(s.interval_q(8), 56);
        assert!((s.peak_data_utilization(&t()) - 4.0 / 7.0).abs() < 1e-12); // 57%
    }

    #[test]
    fn rank_partitioned_ras_and_cas_anchors_are_12() {
        // Section 3.1 "Fixed periodic commands": "we would have arrived at
        // an l = 12" for either alternative anchor.
        for a in [Anchor::FixedPeriodicRas, Anchor::FixedPeriodicCas] {
            let s = solve(&t(), a, PartitionLevel::Rank).unwrap();
            assert_eq!(s.l, 12, "{a:?}");
        }
    }

    #[test]
    fn bank_partitioned_data_anchor_is_21() {
        // Section 4.2: "to fulfil these many equations, l >= 21".
        let s = solve(&t(), Anchor::FixedPeriodicData, PartitionLevel::Bank).unwrap();
        assert_eq!(s.l, 21);
    }

    #[test]
    fn bank_partitioned_ras_anchor_is_15() {
        // Section 4.2: "with fixed periodic RAS ... l >= 15 and we arrive
        // at a more efficient pipeline", Q = 120 for 8 threads, 27% peak.
        let s = solve(&t(), Anchor::FixedPeriodicRas, PartitionLevel::Bank).unwrap();
        assert_eq!(s.l, 15);
        assert_eq!(s.interval_q(8), 120);
        assert!((s.peak_data_utilization(&t()) - 4.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn no_partitioning_best_is_43() {
        // Section 4.3: "With fixed periodic RAS, this gives us the best
        // l = 43 cycles", 344-cycle interval, 9% utilization.
        let s = solve_best(&t(), PartitionLevel::None).unwrap();
        assert_eq!(s.l, 43);
        assert_eq!(s.anchor, Anchor::FixedPeriodicRas);
        assert_eq!(s.interval_q(8), 344);
        assert!(s.peak_data_utilization(&t()) < 0.10);
    }

    #[test]
    fn best_rank_pipeline_uses_data_anchor() {
        let s = solve_best(&t(), PartitionLevel::Rank).unwrap();
        assert_eq!((s.l, s.anchor), (7, Anchor::FixedPeriodicData));
    }

    #[test]
    fn best_bank_pipeline_uses_ras_anchor() {
        let s = solve_best(&t(), PartitionLevel::Bank).unwrap();
        assert_eq!((s.l, s.anchor), (15, Anchor::FixedPeriodicRas));
    }

    #[test]
    fn few_threads_need_longer_pitch_under_rank_partitioning() {
        // With 2 threads, a thread revisits its rank every 2 slots; the
        // write-to-read turnaround then forces l > 7.
        let s8 =
            solve_for_threads(&t(), Anchor::FixedPeriodicData, PartitionLevel::Rank, 8).unwrap();
        assert_eq!(s8.l, 7); // 8 threads: same-rank distance 8 is harmless
        let s2 =
            solve_for_threads(&t(), Anchor::FixedPeriodicData, PartitionLevel::Rank, 2).unwrap();
        assert!(s2.l > 7, "2-thread pitch {} should exceed 7", s2.l);
    }

    #[test]
    fn conservative_pipeline_is_the_widest_uniform_pitch() {
        // Same-bank-adjacent assumptions coincide with the best
        // no-partitioning pipeline for the paper's parameters.
        let c = conservative_pipeline(&t(), 8).unwrap();
        assert_eq!(c.l, 43);
        let best_np = solve_best(&t(), PartitionLevel::None).unwrap();
        assert!(c.l >= best_np.l);
    }

    #[test]
    fn pitch_monotone_in_constraint_strength() {
        let rank = solve_best(&t(), PartitionLevel::Rank).unwrap().l;
        let bank = solve_best(&t(), PartitionLevel::Bank).unwrap().l;
        let none = solve_best(&t(), PartitionLevel::None).unwrap().l;
        assert!(rank <= bank && bank <= none);
    }
}
