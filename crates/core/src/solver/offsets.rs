//! Command-time offsets for the three anchor disciplines.

use fsmc_dram::TimingParams;

/// Which event of a transaction recurs with fixed period `l`.
///
/// Section 3.1 ("Fixed periodic commands"): anchoring the *data* transfer
/// yields the most efficient rank-partitioned pipeline (l = 7), while
/// anchoring the Activate (RAS) wins under bank partitioning (l = 15) and
/// no partitioning (l = 43). The asymmetry comes from the different
/// command sequences of reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    /// Slot `k`'s data-bus transfer begins exactly at `k*l`.
    FixedPeriodicData,
    /// Slot `k`'s Activate is issued exactly at `k*l`.
    FixedPeriodicRas,
    /// Slot `k`'s column command is issued exactly at `k*l`.
    FixedPeriodicCas,
}

impl Anchor {
    /// All three anchors, for exhaustive search.
    pub fn all() -> [Anchor; 3] {
        [Anchor::FixedPeriodicData, Anchor::FixedPeriodicRas, Anchor::FixedPeriodicCas]
    }
}

/// Signed command/data offsets (in cycles) relative to a slot's anchor
/// point `k*l`, for both transaction directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOffsets {
    pub read_act: i64,
    pub read_cas: i64,
    pub read_data: i64,
    pub write_act: i64,
    pub write_cas: i64,
    pub write_data: i64,
}

impl SlotOffsets {
    /// Computes the offsets for `anchor` under timing parameters `t`.
    pub fn for_anchor(anchor: Anchor, t: &TimingParams) -> Self {
        let rcd = t.t_rcd as i64;
        let cas = t.t_cas as i64;
        let cwd = t.t_cwd as i64;
        match anchor {
            Anchor::FixedPeriodicData => SlotOffsets {
                read_act: -(cas + rcd),
                read_cas: -cas,
                read_data: 0,
                write_act: -(cwd + rcd),
                write_cas: -cwd,
                write_data: 0,
            },
            Anchor::FixedPeriodicRas => SlotOffsets {
                read_act: 0,
                read_cas: rcd,
                read_data: rcd + cas,
                write_act: 0,
                write_cas: rcd,
                write_data: rcd + cwd,
            },
            Anchor::FixedPeriodicCas => SlotOffsets {
                read_act: -rcd,
                read_cas: 0,
                read_data: cas,
                write_act: -rcd,
                write_cas: 0,
                write_data: cwd,
            },
        }
    }

    /// The distinct command-bus occupancy offsets (Activate and CAS times
    /// for both directions, deduplicated).
    pub fn command_offsets(&self) -> Vec<i64> {
        let mut v = vec![self.read_act, self.read_cas, self.write_act, self.write_cas];
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The most negative offset — schedules shift everything by this much
    /// so absolute command times are non-negative.
    pub fn min_offset(&self) -> i64 {
        [
            self.read_act,
            self.read_cas,
            self.write_act,
            self.write_cas,
            self.read_data,
            self.write_data,
        ]
        .into_iter()
        .min()
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_periodic_data_offsets_match_paper() {
        // Section 3.1: "The preceding Column-Rd is in cycle kl-11. The
        // preceding Column-Wr is in cycle kl-5. The preceding Activate
        // (read) is in cycle kl-22 / (write) kl-16."
        let o = SlotOffsets::for_anchor(Anchor::FixedPeriodicData, &TimingParams::ddr3_1600());
        assert_eq!(o.read_cas, -11);
        assert_eq!(o.write_cas, -5);
        assert_eq!(o.read_act, -22);
        assert_eq!(o.write_act, -16);
        assert_eq!(o.command_offsets(), vec![-22, -16, -11, -5]);
        assert_eq!(o.min_offset(), -22);
    }

    #[test]
    fn fixed_periodic_ras_offsets() {
        let o = SlotOffsets::for_anchor(Anchor::FixedPeriodicRas, &TimingParams::ddr3_1600());
        assert_eq!(o.read_act, 0);
        assert_eq!(o.read_cas, 11);
        assert_eq!(o.read_data, 22);
        assert_eq!(o.write_data, 16);
        // Read and write CAS coincide, so only two command offsets remain.
        assert_eq!(o.command_offsets(), vec![0, 11]);
    }

    #[test]
    fn fixed_periodic_cas_offsets() {
        let o = SlotOffsets::for_anchor(Anchor::FixedPeriodicCas, &TimingParams::ddr3_1600());
        assert_eq!(o.read_act, -11);
        assert_eq!(o.read_cas, 0);
        assert_eq!(o.read_data, 11);
        assert_eq!(o.write_data, 5);
    }
}
