//! The Section 3.1 "Improving bandwidth" analysis: let every thread
//! inject `N` *consecutive* transactions per interval instead of one.
//!
//! Within a burst the transactions come from one thread — under rank
//! partitioning they share a rank, so consecutive transfers need no
//! tRTRS switch gap (the hoped-for win) but *do* pick up the same-rank
//! CAS/activation constraints (the cost). The paper reports that "for
//! our chosen parameters, this did not result in a more efficient
//! pipeline"; this module reproduces that conclusion quantitatively and
//! keeps the machinery for exploring other parameter points.
//!
//! A burst pipeline is described by two pitches: `l_intra` between the
//! transactions of one burst and `l_inter` between the last transaction
//! of one burst and the first of the next (different threads/ranks).
//! Peak data-bus utilisation is then
//! `N * tBURST / ((N-1) * l_intra + l_inter)`.

use super::offsets::{Anchor, SlotOffsets};
use fsmc_dram::TimingParams;

/// A solved N-burst pipeline under rank partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSolution {
    /// Transactions per thread per interval.
    pub n: u32,
    /// Pitch between same-thread (same-rank) transactions in a burst.
    pub l_intra: u32,
    /// Pitch between the last slot of a burst and the next thread's first.
    pub l_inter: u32,
    pub anchor: Anchor,
}

impl BurstSolution {
    /// Interval length for `threads` threads.
    pub fn interval_q(&self, threads: u8) -> u64 {
        threads as u64 * self.burst_span()
    }

    /// Cycles spanned by one thread's burst, inter-gap included.
    pub fn burst_span(&self) -> u64 {
        (self.n as u64 - 1) * self.l_intra as u64 + self.l_inter as u64
    }

    /// Theoretical peak data-bus utilisation.
    pub fn peak_data_utilization(&self, t: &TimingParams) -> f64 {
        self.n as f64 * t.t_burst as f64 / self.burst_span() as f64
    }
}

/// All command-time offsets of a burst's `n` slots, for one intra pitch.
fn burst_offsets(o: &SlotOffsets, l_intra: u32, n: u32) -> Vec<i64> {
    let mut cmds = Vec::new();
    for k in 0..n as i64 {
        let base = k * l_intra as i64;
        cmds.extend([base + o.read_act, base + o.read_cas, base + o.write_act, base + o.write_cas]);
    }
    cmds.sort_unstable();
    cmds.dedup();
    cmds
}

/// Checks one candidate (`l_intra`, `l_inter`) against the same-rank
/// rules inside a burst and the cross-rank rules between bursts.
fn feasible(t: &TimingParams, o: &SlotOffsets, n: u32, l_intra: u32, l_inter: u32) -> bool {
    let burst = t.t_burst as i64;
    let rtrs = t.t_rtrs as i64;
    // --- Intra-burst (same rank, consecutive slots s apart).
    for s in 1..n {
        let gap = (s * l_intra) as i64;
        // Data bus: contiguous same-rank transfers are fine, overlap is not.
        let worst_shift =
            [o.read_data - o.write_data, o.write_data - o.read_data, 0].into_iter().max().unwrap();
        if gap < burst + worst_shift {
            return false;
        }
        // CAS-to-CAS same rank: worst direction pair.
        let wr_rd = t.wr_to_rd_same_rank() as i64 + o.write_cas - o.read_cas;
        let rd_wr = t.rd_to_wr_same_rank() as i64 + o.read_cas - o.write_cas;
        // Consecutive same-rank slots may land in one bank group, so the
        // burst solver assumes the long spacing tCCD_L (== tCCD_S on
        // parts without bank groups).
        let ccd = t.t_ccd_l as i64;
        if gap < wr_rd.max(rd_wr).max(ccd) {
            return false;
        }
        // tRRD between same-rank activates.
        let rrd = t.t_rrd as i64 + (o.read_act - o.write_act).abs();
        if gap < rrd {
            return false;
        }
    }
    // tFAW: activates s and s+4 within one burst.
    if n > 4 {
        let gap = (4 * l_intra) as i64;
        if gap < t.t_faw as i64 + (o.read_act - o.write_act).abs() {
            return false;
        }
    }
    // --- Inter-burst (different ranks): tRTRS on the data bus.
    let shift = (o.read_data - o.write_data).abs();
    if (l_inter as i64) < burst + rtrs + shift {
        return false;
    }
    // --- Command-bus collision freedom across the whole periodic pattern.
    // The pattern repeats every burst_span; enumerate command offsets of
    // several consecutive bursts and require all distinct.
    let span = (n - 1) as i64 * l_intra as i64 + l_inter as i64;
    let mut all = Vec::new();
    for b in 0..4i64 {
        for c in burst_offsets(o, l_intra, n) {
            all.push(b * span + c);
        }
    }
    all.sort_unstable();
    all.windows(2).all(|w| w[0] != w[1])
}

/// Solves the N-burst rank-partitioned pipeline for the smallest
/// `(l_intra, l_inter)` (minimising the burst span), or `None` if no
/// feasible pair exists below an internal bound.
///
/// ```
/// use fsmc_core::solver::{solve_burst, Anchor};
/// use fsmc_dram::TimingParams;
///
/// let t = TimingParams::ddr3_1600();
/// let one = solve_burst(&t, Anchor::FixedPeriodicData, 1).unwrap();
/// assert_eq!(one.burst_span(), 7); // N = 1 degenerates to the paper's l
/// let four = solve_burst(&t, Anchor::FixedPeriodicData, 4).unwrap();
/// // Section 3.1: bursting does not pay off for these parameters.
/// assert!(four.peak_data_utilization(&t) <= one.peak_data_utilization(&t));
/// ```
pub fn solve_burst(t: &TimingParams, anchor: Anchor, n: u32) -> Option<BurstSolution> {
    assert!(n >= 1, "burst size must be at least 1");
    let o = SlotOffsets::for_anchor(anchor, t);
    let mut best: Option<BurstSolution> = None;
    for l_intra in 1..=128u32 {
        for l_inter in 1..=128u32 {
            if feasible(t, &o, n, l_intra, l_inter) {
                let cand = BurstSolution { n, l_intra, l_inter, anchor };
                if best.is_none_or(|b| cand.burst_span() < b.burst_span()) {
                    best = Some(cand);
                }
            }
        }
        // Spans only grow with l_intra once a solution exists at every
        // l_inter; a small continued search suffices.
        if best.is_some() && l_intra as u64 > best.unwrap().burst_span() {
            break;
        }
    }
    best
}

/// The quantity the paper compares: utilisation of the best N-burst
/// pipeline relative to the N = 1 fixed-periodic-data pipeline.
pub fn burst_speedup(t: &TimingParams, n: u32) -> Option<f64> {
    let base = solve_burst(t, Anchor::FixedPeriodicData, 1)?;
    let burst = solve_burst(t, Anchor::FixedPeriodicData, n)?;
    Some(burst.peak_data_utilization(t) / base.peak_data_utilization(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn n1_matches_the_single_slot_pipeline() {
        let s = solve_burst(&t(), Anchor::FixedPeriodicData, 1).unwrap();
        // With one slot per burst the span is just l_inter, and it must
        // equal the paper's l = 7 (the command-bus check plus tRTRS).
        assert_eq!(s.burst_span(), 7);
        assert!((s.peak_data_utilization(&t()) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn bursting_does_not_beat_the_paper_pipeline() {
        // Section 3.1: "our analysis shows that for our chosen parameters,
        // this did not result in a more efficient pipeline."
        for n in 2..=6 {
            let speedup = burst_speedup(&t(), n).expect("burst pipeline solves");
            assert!(
                speedup <= 1.0 + 1e-9,
                "N = {n} burst pipeline unexpectedly faster: {speedup:.3}"
            );
        }
    }

    #[test]
    fn intra_pitch_is_bound_by_the_write_to_read_turnaround() {
        let s = solve_burst(&t(), Anchor::FixedPeriodicData, 4).unwrap();
        // Same-rank wr->rd = 15 with a +6 CAS shift => l_intra >= 21.
        assert!(s.l_intra >= 21, "l_intra = {}", s.l_intra);
        // Burst members need no tRTRS, so inter gap stays small.
        assert!(s.l_inter < s.l_intra);
    }

    #[test]
    fn burst_span_and_q_are_consistent() {
        let s = solve_burst(&t(), Anchor::FixedPeriodicData, 3).unwrap();
        assert_eq!(s.interval_q(8), 8 * s.burst_span());
        assert!(s.peak_data_utilization(&t()) > 0.0);
    }

    #[test]
    fn low_turnaround_parts_can_profit_from_bursting() {
        // The machinery is parameter-generic: with tiny turnarounds and a
        // huge rank-switch penalty, bursting wins.
        let exotic = TimingParams { t_rtrs: 20, t_wtr: 1, t_ccd: 4, ..t() };
        let base = solve_burst(&exotic, Anchor::FixedPeriodicData, 1).unwrap();
        let burst = solve_burst(&exotic, Anchor::FixedPeriodicData, 4).unwrap();
        assert!(
            burst.peak_data_utilization(&exotic) > base.peak_data_utilization(&exotic),
            "burst {:?} vs base {:?}",
            burst,
            base
        );
    }
}
