//! The pipeline constraint solver: Sections 3.1, 4.2 and 4.3 of the paper.
//!
//! Every FS pipeline is described by a *slot pitch* `l`: one memory
//! transaction slot begins every `l` DRAM cycles, and slot `k`'s commands
//! sit at fixed offsets from `k*l` determined by the chosen *anchor*
//! (fixed periodic data, RAS or CAS). The solver encodes the paper's
//! inequalities — command-bus collision freedom (Equation 1), tRRD/tFAW
//! (Equations 2–3), read/write turnarounds (Equation 4) and the same-bank
//! worst case of Section 4.3 — and finds the minimum feasible `l`.
//!
//! With the paper's DDR3-1600 parameters the solver reproduces every
//! number in the text:
//!
//! | partition | anchor | `l` |
//! |---|---|---|
//! | rank | fixed periodic data | **7** |
//! | rank | fixed periodic RAS/CAS | 12 |
//! | bank | fixed periodic data | 21 |
//! | bank | fixed periodic RAS | **15** |
//! | none | fixed periodic RAS | **43** |

pub mod burst;
pub mod certify;
mod constraints;
pub mod diagram;
mod offsets;
mod schedule;
mod solve;

pub use burst::{burst_speedup, solve_burst, BurstSolution};
pub use certify::{certify_reordered, certify_uniform, CertifyReport};
pub use constraints::{build_constraints, Constraint, PartitionLevel};
pub use offsets::{Anchor, SlotOffsets};
pub use schedule::{ReorderedBpSchedule, ScheduleVariant, SlotPlan, SlotSchedule};
pub use solve::{
    conservative_pipeline, solve, solve_best, solve_for_threads, PipelineSolution, SolveError,
};
