//! Schedule certification: a mechanised version of the paper's
//! zero-conflict argument.
//!
//! The FS constraint system is *pairwise*: every DDR3 rule involved
//! relates two commands (or two transactions). A schedule is therefore
//! conflict-free for **all** 2^k read/write mixes iff it is conflict-free
//! for every *pair* of slots under every direction combination and the
//! worst-case rank/bank sharing its partition level allows. The
//! certifier enumerates exactly that space and replays each case through
//! the independent [`fsmc_dram::TimingChecker`] — turning Section 3's
//! "we mathematically show that the proposed system yields zero
//! information leakage" into an executable artefact.

use super::schedule::{ReorderedBpSchedule, SlotSchedule};
use super::PartitionLevel;
use fsmc_dram::checker::Violation;
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, Geometry, RankId, RowId};
use fsmc_dram::{TimingChecker, TimingParams};

/// Outcome of certifying a schedule.
#[derive(Debug, Clone)]
pub struct CertifyReport {
    /// Pairwise cases examined.
    pub cases: u64,
    /// Violations found (empty = certified).
    pub violations: Vec<Violation>,
}

impl CertifyReport {
    /// True if no case produced a timing violation.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }
}

fn two_transaction_case(
    checker: &TimingChecker,
    report: &mut CertifyReport,
    a: (u64, u64, RankId, BankId, bool), // (act, cas, rank, bank, is_write)
    b: (u64, u64, RankId, BankId, bool),
) {
    report.cases += 1;
    let row_a = RowId(11);
    // Distinct rows force the full row-cycle path when banks collide.
    let row_b = if a.2 == b.2 && a.3 == b.3 { RowId(29) } else { RowId(11) };
    let mk = |act: u64, cas: u64, rank: RankId, bank: BankId, row: RowId, w: bool| {
        let cas_cmd = if w {
            Command::write_ap(rank, bank, row, ColId(0))
        } else {
            Command::read_ap(rank, bank, row, ColId(0))
        };
        [
            TimedCommand::new(Command::activate(rank, bank, row), act),
            TimedCommand::new(cas_cmd, cas),
        ]
    };
    let mut cmds = Vec::with_capacity(4);
    cmds.extend(mk(a.0, a.1, a.2, a.3, row_a, a.4));
    cmds.extend(mk(b.0, b.1, b.2, b.3, row_b, b.4));
    report.violations.extend(checker.check(&cmds));
}

/// Certifies a uniform slot schedule at the given partition level by
/// exhausting all slot pairs within `span_intervals` intervals, all four
/// direction combinations, and the worst-case rank/bank sharing the
/// level permits.
///
/// ```
/// use fsmc_core::solver::{certify_uniform, solve, Anchor, PartitionLevel, SlotSchedule};
/// use fsmc_dram::{Geometry, TimingParams};
///
/// let t = TimingParams::ddr3_1600();
/// let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
/// let schedule = SlotSchedule::uniform(sol, 8);
/// let report = certify_uniform(&schedule, PartitionLevel::Rank, &t, &Geometry::paper_default(), 2);
/// assert!(report.certified());
/// ```
///
/// * `Rank`: slots of different threads sit on different ranks; a
///   thread's own slots share its rank but use different banks (the
///   scheduler's bank selection guarantees this). On bank-grouped
///   geometries those banks may share a bank group, so the worst case
///   places them in one group (tCCD_L applies).
/// * `Bank`: all slots may share one rank; a thread's own slots reuse
///   its *own bank* (bank striping), others' banks differ — the stripe
///   wraps over `banks_per_rank`, so group collisions appear exactly as
///   the scheduler can produce them.
/// * `None`: any two slots may target the same bank of the same rank —
///   except under triple alternation, where slots of different bank
///   classes provably differ and only same-class slots share a bank.
pub fn certify_uniform(
    schedule: &SlotSchedule,
    level: PartitionLevel,
    t: &TimingParams,
    geom: &Geometry,
    span_intervals: u64,
) -> CertifyReport {
    let checker = TimingChecker::new(*geom, *t);
    let banks_per_rank = geom.banks_per_rank();
    // A thread's second bank on its own rank: the worst case shares the
    // first bank's group when groups exist (bank `bank_groups` is the
    // next bank of group 0), and is simply the next bank otherwise.
    let same_group_other_bank = if geom.bank_groups() > 1 && geom.bank_groups() < banks_per_rank {
        BankId(geom.bank_groups())
    } else {
        BankId(1 % banks_per_rank)
    };
    let n = schedule.threads() as u64;
    let slots_per_span = match schedule.variant() {
        super::schedule::ScheduleVariant::Uniform => n,
        super::schedule::ScheduleVariant::TripleAlternation => 3 * n,
    };
    let total = slots_per_span * span_intervals.max(2);
    let mut report = CertifyReport { cases: 0, violations: Vec::new() };
    for i in 0..total {
        let pi = schedule.plan(i);
        for j in (i + 1)..total {
            let pj = schedule.plan(j);
            let same_thread = i % n == j % n;
            // Worst-case spatial assignment per level.
            let (rank_i, rank_j, bank_i, bank_j, applicable) = match level {
                PartitionLevel::Rank => {
                    let ri = RankId((i % n) as u8 % 8);
                    let rj = RankId((j % n) as u8 % 8);
                    // Same thread: same rank, scheduler picks distinct banks
                    // — in the worst case from the same bank group.
                    let (bi, bj) = if same_thread {
                        (BankId(0), same_group_other_bank)
                    } else {
                        (BankId(0), BankId(0))
                    };
                    (ri, rj, bi, bj, true)
                }
                PartitionLevel::Bank => {
                    // Everyone piles onto rank 0; banks are striped by thread.
                    let bi = BankId((i % n) as u8 % banks_per_rank);
                    let bj = BankId((j % n) as u8 % banks_per_rank);
                    (RankId(0), RankId(0), bi, bj, true)
                }
                PartitionLevel::None => match (pi.bank_class, pj.bank_class) {
                    // Triple alternation: same group may share a bank
                    // (ci == cj picks the same BankId); different groups
                    // provably cannot, and get distinct banks.
                    (Some(ci), Some(cj)) => (RankId(0), RankId(0), BankId(ci), BankId(cj), true),
                    // Naive NP: everything may pile onto one bank.
                    _ => (RankId(0), RankId(0), BankId(3), BankId(3), true),
                },
            };
            if !applicable {
                continue;
            }
            for dir_i in [false, true] {
                for dir_j in [false, true] {
                    let (act_i, cas_i) = if dir_i {
                        (pi.write_act, pi.write_cas)
                    } else {
                        (pi.read_act, pi.read_cas)
                    };
                    let (act_j, cas_j) = if dir_j {
                        (pj.write_act, pj.write_cas)
                    } else {
                        (pj.read_act, pj.read_cas)
                    };
                    two_transaction_case(
                        &checker,
                        &mut report,
                        (act_i, cas_i, rank_i, bank_i, dir_i),
                        (act_j, cas_j, rank_j, bank_j, dir_j),
                    );
                }
            }
        }
    }
    report
}

/// Certifies the reordered bank-partitioned schedule over every read
/// count per interval (0..=n reads, writes after reads) across
/// `span_intervals` consecutive intervals, with all slots piled on one
/// rank and a thread's own bank reused across intervals.
pub fn certify_reordered(
    schedule: &ReorderedBpSchedule,
    t: &TimingParams,
    geom: &Geometry,
    span_intervals: u64,
) -> CertifyReport {
    let checker = TimingChecker::new(*geom, *t);
    // Distinct-bank worst case: on bank-grouped parts the two banks may
    // share a group (tCCD_L applies); flat parts keep the original pair.
    let distinct_other = if geom.bank_groups() > 1 && 1 + geom.bank_groups() < geom.banks_per_rank()
    {
        BankId(1 + geom.bank_groups())
    } else {
        BankId(2)
    };
    let n = schedule.threads();
    let mut report = CertifyReport { cases: 0, violations: Vec::new() };
    // For every pair of intervals and read-counts, check every slot pair.
    for k1 in 0..span_intervals {
        for k2 in k1..span_intervals {
            for r1 in 0..=n {
                for r2 in 0..=n {
                    for j1 in 0..n {
                        for j2 in 0..n {
                            if k1 == k2 && (r1 != r2 || j2 <= j1) {
                                continue;
                            }
                            let w1 = j1 >= r1;
                            let w2 = j2 >= r2;
                            let (a1, c1, _) = schedule.slot_times(k1, j1, w1);
                            let (a2, c2, _) = schedule.slot_times(k2, j2, w2);
                            // Worst case: same rank. Same-bank reuse can
                            // only be *produced* by the scheduler when the
                            // bank has recovered (its readiness check is
                            // part of the design, Section 7) — certify
                            // exactly the pairs it can emit.
                            let min_gap =
                                if w1 { t.same_bank_wr_turnaround() } else { t.t_rc } as u64;
                            let same_bank = k1 != k2 && a2 >= a1 + min_gap;
                            let (b1, b2) = if same_bank {
                                (BankId(2), BankId(2))
                            } else {
                                (BankId(1), distinct_other)
                            };
                            two_transaction_case(
                                &checker,
                                &mut report,
                                (a1, c1, RankId(0), b1, w1),
                                (a2, c2, RankId(0), b2, w2),
                            );
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, solve_for_threads, Anchor};

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn rank_partitioned_schedule_certifies() {
        let sol = solve(&t(), Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let r = certify_uniform(&s, PartitionLevel::Rank, &t(), &Geometry::paper_default(), 3);
        assert!(r.certified(), "{:?}", r.violations.first());
        assert!(r.cases > 1000);
    }

    #[test]
    fn bank_partitioned_schedule_certifies() {
        let sol =
            solve_for_threads(&t(), Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let r = certify_uniform(&s, PartitionLevel::Bank, &t(), &Geometry::paper_default(), 3);
        assert!(r.certified(), "{:?}", r.violations.first());
    }

    #[test]
    fn triple_alternation_schedule_certifies() {
        let s = SlotSchedule::triple_alternation(&t(), 8).unwrap();
        let r = certify_uniform(&s, PartitionLevel::None, &t(), &Geometry::paper_default(), 2);
        assert!(r.certified(), "{:?}", r.violations.first());
    }

    #[test]
    fn reordered_bp_schedule_certifies() {
        let s = ReorderedBpSchedule::new(&t(), 8);
        let r = certify_reordered(&s, &t(), &Geometry::paper_default(), 2);
        assert!(r.certified(), "{:?}", r.violations.first());
        assert!(r.cases > 4_000, "only {} cases", r.cases);
    }

    #[test]
    fn every_device_profile_certifies_all_variants() {
        use fsmc_dram::DeviceGeneration;
        for g in DeviceGeneration::all() {
            let p = g.profile();
            let (t, geom) = (p.timing, p.geometry);
            let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank)
                .unwrap_or_else(|e| panic!("{g}: rank solve failed: {e}"));
            let r =
                certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Rank, &t, &geom, 2);
            assert!(r.certified(), "{g} rank: {:?}", r.violations.first());
            let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8)
                .unwrap_or_else(|e| panic!("{g}: bank solve failed: {e}"));
            let r =
                certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Bank, &t, &geom, 2);
            assert!(r.certified(), "{g} bank: {:?}", r.violations.first());
            let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8)
                .unwrap_or_else(|e| panic!("{g}: np solve failed: {e}"));
            let r =
                certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::None, &t, &geom, 2);
            assert!(r.certified(), "{g} np: {:?}", r.violations.first());
            let s = SlotSchedule::triple_alternation(&t, 8)
                .unwrap_or_else(|e| panic!("{g}: triple alternation failed: {e}"));
            let r = certify_uniform(&s, PartitionLevel::None, &t, &geom, 2);
            assert!(r.certified(), "{g} ta: {:?}", r.violations.first());
            let s = ReorderedBpSchedule::new(&t, 8);
            let r = certify_reordered(&s, &t, &geom, 2);
            assert!(r.certified(), "{g} reordered: {:?}", r.violations.first());
        }
    }

    #[test]
    fn ddr4_solver_pitch_respects_ccd_l_and_rejects_undersized() {
        // The solver's same-rank constraint now uses tCCD_L, so every
        // DDR4 pitch clears the long spacing; a hand-forced pitch of
        // tCCD_S still fails certification on the DDR4 geometry.
        use crate::solver::PipelineSolution;
        use fsmc_dram::DeviceGeneration;
        let p = DeviceGeneration::Ddr4_2400.profile();
        let sol = solve(&p.timing, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        assert!(
            sol.l >= p.timing.t_ccd_l,
            "solver pitch {} must respect tCCD_L {}",
            sol.l,
            p.timing.t_ccd_l
        );
        let bad = PipelineSolution { l: p.timing.t_ccd, ..sol };
        let s = SlotSchedule::uniform(bad, 8);
        let r = certify_uniform(&s, PartitionLevel::Rank, &p.timing, &p.geometry, 2);
        assert!(!r.certified(), "pitch tCCD_S must not certify on DDR4");
    }

    #[test]
    fn an_undersized_pitch_fails_certification() {
        // Force l = 6 (the infeasible value the paper rules out: 6 is a
        // forbidden command-bus difference).
        use crate::solver::PipelineSolution;
        let sol = solve(&t(), Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        let bad = PipelineSolution { l: 6, ..sol };
        let s = SlotSchedule::uniform(bad, 8);
        let r = certify_uniform(&s, PartitionLevel::Rank, &t(), &Geometry::paper_default(), 2);
        assert!(!r.certified(), "l = 6 must not certify");
    }

    #[test]
    fn naive_np_schedule_certifies_single_bank_worst_case() {
        let sol =
            solve_for_threads(&t(), Anchor::FixedPeriodicRas, PartitionLevel::None, 8).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let r = certify_uniform(&s, PartitionLevel::None, &t(), &Geometry::paper_default(), 2);
        assert!(r.certified(), "{:?}", r.violations.first());
    }
}
