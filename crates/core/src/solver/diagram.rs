//! ASCII rendering of FS pipelines — the reproduction of the paper's
//! Figure 1 (rank-partitioned timing diagram) and Figure 2 (triple
//! alternation).

use super::schedule::{ScheduleVariant, SlotSchedule};
use fsmc_dram::TimingParams;

/// Renders the per-cycle command-bus and data-bus occupancy of `slots`
/// consecutive slots of a uniform schedule, with the given read/write
/// mix (`mix[i]` = slot *i* is a write; the mix wraps).
///
/// Each row is one resource; each column one DRAM cycle; the character is
/// the slot's thread id (hex). This is the textual analogue of Figure 1:
/// with the paper's parameters, eight slots of any mix occupy exactly 56
/// cycles with no column carrying two commands.
pub fn render_uniform(
    schedule: &SlotSchedule,
    t: &TimingParams,
    mix: &[bool],
    slots: u64,
) -> String {
    assert!(!mix.is_empty(), "mix must be non-empty");
    let mut acts: Vec<(u64, u8)> = Vec::new();
    let mut rds: Vec<(u64, u8)> = Vec::new();
    let mut wrs: Vec<(u64, u8)> = Vec::new();
    let mut data: Vec<(u64, u64, u8)> = Vec::new();
    let mut horizon = 0u64;
    for g in 0..slots {
        let p = schedule.plan(g);
        let thread = (g % schedule.threads() as u64) as u8;
        let is_write = mix[(g as usize) % mix.len()];
        if is_write {
            acts.push((p.write_act, thread));
            wrs.push((p.write_cas, thread));
            data.push((p.write_data, p.write_data + t.t_burst as u64, thread));
            horizon = horizon.max(p.write_data + t.t_burst as u64);
        } else {
            acts.push((p.read_act, thread));
            rds.push((p.read_cas, thread));
            data.push((p.read_data, p.read_data + t.t_burst as u64, thread));
            horizon = horizon.max(p.read_data + t.t_burst as u64);
        }
    }
    let width = horizon as usize + 1;
    let mut rows = vec![vec![b'.'; width]; 4];
    let digit = |t: u8| -> u8 { b"0123456789ABCDEF"[(t & 0xF) as usize] };
    for &(c, th) in &acts {
        rows[0][c as usize] = digit(th);
    }
    for &(c, th) in &rds {
        rows[1][c as usize] = digit(th);
    }
    for &(c, th) in &wrs {
        rows[2][c as usize] = digit(th);
    }
    for &(s, e, th) in &data {
        for c in s..e {
            rows[3][c as usize] = digit(th);
        }
    }
    let labels = ["Activate  ", "Column-Rd ", "Column-Wr ", "Data bus  "];
    let mut out = String::new();
    // Cycle ruler every 10 cycles.
    out.push_str("cycle     ");
    for c in 0..width {
        out.push(if c % 10 == 0 { '|' } else { ' ' });
    }
    out.push('\n');
    for (label, row) in labels.iter().zip(rows) {
        out.push_str(label);
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Renders a slot table for a schedule (used for the Figure 2 triple
/// alternation view): one line per slot with its thread, command cycles
/// and, under triple alternation, the permitted bank group.
pub fn render_slot_table(schedule: &SlotSchedule, slots: u64) -> String {
    let mut out = String::new();
    out.push_str("slot thread sub-interval bank-group  read(ACT/CAS/data)  write(ACT/CAS/data)\n");
    for g in 0..slots {
        let p = schedule.plan(g);
        let sub = match schedule.variant() {
            ScheduleVariant::TripleAlternation => {
                format!("{}", (g / schedule.threads() as u64) % 3)
            }
            ScheduleVariant::Uniform => "-".to_string(),
        };
        let class = match p.bank_class {
            Some(c) => format!("bank%3=={c}"),
            None => "any".to_string(),
        };
        out.push_str(&format!(
            "{:>4} T{:<5} {:>12} {:>10}  {:>5}/{:<5}/{:<6} {:>5}/{:<5}/{:<6}\n",
            g,
            p.domain.0,
            sub,
            class,
            p.read_act,
            p.read_cas,
            p.read_data,
            p.write_act,
            p.write_cas,
            p.write_data,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_best, PartitionLevel};

    #[test]
    fn figure_1_diagram_has_no_command_collisions() {
        let t = TimingParams::ddr3_1600();
        let sol = solve_best(&t, PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        // Figure 1's mix: six reads and two writes.
        let mix = [false, false, false, false, false, true, true, false];
        let art = render_uniform(&s, &t, &mix, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        // No column may hold two command characters across the three
        // command rows (rows 1..=3 after the ruler).
        let width = lines[1].len() - 10;
        for c in 0..width {
            let busy = (1..4)
                .filter(|&r| {
                    let row = lines[r].as_bytes();
                    row.get(10 + c).is_some_and(|&b| b != b'.')
                })
                .count();
            assert!(busy <= 1, "command-bus collision at column {c}\n{art}");
        }
    }

    #[test]
    fn figure_1_eight_slots_span_56_cycles_on_the_data_bus() {
        let t = TimingParams::ddr3_1600();
        let sol = solve_best(&t, PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let p0 = s.plan(0);
        let p8 = s.plan(8);
        assert_eq!(p8.read_data - p0.read_data, 56);
    }

    #[test]
    fn slot_table_mentions_bank_groups_for_ta() {
        let t = TimingParams::ddr3_1600();
        let s = SlotSchedule::triple_alternation(&t, 8).unwrap();
        let table = render_slot_table(&s, 24);
        assert!(table.contains("bank%3==0"));
        assert!(table.contains("bank%3==2"));
    }
}
