//! Concrete slot schedules materialised from pipeline solutions.
//!
//! A [`SlotSchedule`] turns the solved pitch `l` into absolute command
//! cycles: slot `g` (global, increasing forever) belongs to thread
//! `g % n` and its Activate/CAS/data times are fixed offsets from
//! `g * l`. The triple-alternation variant (Section 4.3, Figure 2)
//! additionally constrains which bank group each slot may touch. The
//! reordered bank-partitioned pipeline (Section 4.2) is interval-based
//! and gets its own type, [`ReorderedBpSchedule`].

use super::offsets::{Anchor, SlotOffsets};
use super::solve::{solve, PipelineSolution, SolveError};
use super::PartitionLevel;
use crate::domain::DomainId;
use fsmc_dram::{Cycle, TimingParams};

/// Which slot discipline a [`SlotSchedule`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleVariant {
    /// One slot per `l` cycles, round-robin across threads (rank
    /// partitioning, basic bank partitioning, naive no-partitioning).
    Uniform,
    /// Three sub-intervals per interval with rotating bank-group masks
    /// (the paper's triple alternation for no partitioning).
    TripleAlternation,
}

/// The fully resolved timing of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPlan {
    /// Global slot index.
    pub slot: u64,
    /// The thread/domain this slot serves.
    pub domain: DomainId,
    /// Cycle at which the controller must commit to a transaction (the
    /// earliest command time across both directions).
    pub decision_cycle: Cycle,
    pub read_act: Cycle,
    pub read_cas: Cycle,
    pub read_data: Cycle,
    pub write_act: Cycle,
    pub write_cas: Cycle,
    pub write_data: Cycle,
    /// Triple alternation only: the slot may touch only banks with
    /// `bank_id % 3 == class`.
    pub bank_class: Option<u8>,
}

/// A steady-state slot schedule for `n` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSchedule {
    solution: PipelineSolution,
    threads: u8,
    variant: ScheduleVariant,
    /// Shift applied to all absolute times so no command lands before 0.
    base: Cycle,
}

impl SlotSchedule {
    /// A uniform schedule from a solved pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn uniform(solution: PipelineSolution, threads: u8) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        let base = (-solution.offsets.min_offset()).max(0) as Cycle;
        SlotSchedule { solution, threads, variant: ScheduleVariant::Uniform, base }
    }

    /// The triple-alternation schedule for no partitioning: bank-class
    /// rotation lets slots sit only `l_bank` cycles apart (15 on the
    /// paper's DDR3 part) while same-bank reuse stays `3 * l` cycles
    /// apart — at least the same-bank write turnaround and tRC.
    ///
    /// On generations whose write recovery is long relative to the bank
    /// pitch (HBM2: turnaround 53 > 3 x 15) the pitch is widened to
    /// `ceil(turnaround / 3)`; a uniform pitch increase only relaxes
    /// every other pairwise constraint, so the bank-level solve stays
    /// valid and the rotation guarantee holds on every profile.
    ///
    /// # Errors
    ///
    /// Propagates a [`SolveError`] if the bank-level pipeline cannot be
    /// solved for these timing parameters.
    pub fn triple_alternation(t: &TimingParams, threads: u8) -> Result<Self, SolveError> {
        assert!(threads > 0, "threads must be non-zero");
        let sol = solve(t, Anchor::FixedPeriodicRas, PartitionLevel::Bank)?;
        // Safety argument of Section 4.3: slots that may share a bank are
        // at least 3 slots apart (same class appears every 3 slot groups),
        // so 3 * l must cover the same-bank turnaround.
        let need = t.same_bank_wr_turnaround().max(t.t_rc);
        let sol = PipelineSolution { l: sol.l.max(need.div_ceil(3)), ..sol };
        let base = (-sol.offsets.min_offset()).max(0) as Cycle;
        Ok(SlotSchedule {
            solution: PipelineSolution { level: PartitionLevel::None, ..sol },
            threads,
            variant: ScheduleVariant::TripleAlternation,
            base,
        })
    }

    pub fn variant(&self) -> ScheduleVariant {
        self.variant
    }

    pub fn threads(&self) -> u8 {
        self.threads
    }

    pub fn slot_pitch(&self) -> u32 {
        self.solution.l
    }

    pub fn solution(&self) -> &PipelineSolution {
        &self.solution
    }

    /// The guaranteed per-thread service interval: `n * l` for uniform
    /// schedules, `3 * n * l` for triple alternation (a thread is
    /// guaranteed one slot per sub-interval triple but may serve up to
    /// three requests in it).
    pub fn q(&self) -> u64 {
        match self.variant {
            ScheduleVariant::Uniform => self.threads as u64 * self.solution.l as u64,
            ScheduleVariant::TripleAlternation => 3 * self.threads as u64 * self.solution.l as u64,
        }
    }

    /// Resolves slot `g` into absolute command times.
    pub fn plan(&self, slot: u64) -> SlotPlan {
        let o = &self.solution.offsets;
        let anchor_time = self.base as i64 + slot as i64 * self.solution.l as i64;
        let abs = |off: i64| (anchor_time + off) as Cycle;
        let domain = DomainId((slot % self.threads as u64) as u8);
        let bank_class = match self.variant {
            ScheduleVariant::Uniform => None,
            ScheduleVariant::TripleAlternation => {
                let thread = (slot % self.threads as u64) as i64;
                let sub = ((slot / self.threads as u64) % 3) as i64;
                Some((thread - sub).rem_euclid(3) as u8)
            }
        };
        SlotPlan {
            slot,
            domain,
            decision_cycle: abs(o.read_act.min(o.write_act)),
            read_act: abs(o.read_act),
            read_cas: abs(o.read_cas),
            read_data: abs(o.read_data),
            write_act: abs(o.write_act),
            write_cas: abs(o.write_cas),
            write_data: abs(o.write_data),
            bank_class,
        }
    }

    /// The first slot whose decision cycle is at or after `cycle`.
    pub fn first_slot_from(&self, cycle: Cycle) -> u64 {
        let o = &self.solution.offsets;
        let dec0 = self.base as i64 + o.read_act.min(o.write_act);
        if (cycle as i64) <= dec0 {
            return 0;
        }
        let delta = cycle as i64 - dec0;
        let l = self.solution.l as i64;
        ((delta + l - 1) / l) as u64
    }
}

/// The reordered bank-partitioned schedule (Section 4.2): within each
/// `Q`-cycle interval all reads go first, then all writes, with data
/// transfers every `data_pitch` cycles (`tBURST + tRTRS = 6` on the
/// paper's DDR3-1600, wider on parts where tRRD/tFAW/tCCD_L dominate)
/// and one write-to-read tail gap before the next interval. Read results
/// are released *en masse* at interval end so co-runners' read/write
/// ratios stay hidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderedBpSchedule {
    threads: u8,
    offsets: SlotOffsets,
    /// Start-to-start pitch of data transfers inside an interval.
    data_pitch: u32,
    /// Extra tail after the last data slot so the write-to-read turnaround
    /// is covered across the interval boundary.
    tail: u32,
    base: Cycle,
}

impl ReorderedBpSchedule {
    /// Builds the schedule for `threads` domains.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(t: &TimingParams, threads: u8) -> Self {
        assert!(threads > 0, "threads must be non-zero");
        let offsets = SlotOffsets::for_anchor(Anchor::FixedPeriodicData, t);
        let o = &offsets;
        // (ACT, CAS, data) offsets per direction. Within an interval reads
        // are ordered before writes, so consecutive slots only ever pair as
        // read-read, read-write, or write-write; write-then-read occurs
        // solely across the interval boundary and is covered by the tail.
        let r = (o.read_act, o.read_cas, o.read_data);
        let w = (o.write_act, o.write_cas, o.write_data);
        let mut pitch = 0i64;
        for (prev, next) in [(r, r), (r, w), (w, w)] {
            // Data bus: no overlap, plus the cross-rank tRTRS switch gap
            // (bank partitioning lets neighbouring slots share a rank or
            // not, so both the same-rank and cross-rank rules apply).
            pitch = pitch.max(t.t_burst as i64 + t.t_rtrs as i64 + prev.2 - next.2);
            // tRRD between activates of same-rank neighbouring slots.
            pitch = pitch.max(t.t_rrd as i64 + prev.0 - next.0);
            // tFAW across any four consecutive same-rank activates.
            pitch = pitch.max((t.t_faw as i64 + prev.0 - next.0 + 3) / 4);
        }
        // Same-type CAS spacing: neighbouring slots may land in one bank
        // group, so the long spacing applies (== tCCD_S on ungrouped
        // parts).
        pitch = pitch.max(t.t_ccd_l as i64);
        // Read-to-write CAS turnaround at the in-interval direction switch.
        pitch = pitch.max(t.rd_to_wr_same_rank() as i64 + o.read_cas - o.write_cas);
        let data_pitch = pitch as u32;
        // The write-to-read CAS turnaround must hold from the last write
        // CAS of interval k (data at Q - tail - data_pitch) to the first
        // read CAS of interval k+1 (data at Q): the CAS gap is
        // tail + data_pitch + read_cas - write_cas >= wr2rd. On DDR3-1600
        // the offset shift cancels the pitch exactly, so tail = wr2rd = 15
        // and Q = 6n + 15 = 63 for the paper's 8-thread system.
        let tail = (t.wr_to_rd_same_rank() as i64 + o.write_cas - o.read_cas - pitch).max(0) as u32;
        let base = (-offsets.min_offset()).max(0) as Cycle;
        ReorderedBpSchedule { threads, offsets, data_pitch, tail, base }
    }

    pub fn threads(&self) -> u8 {
        self.threads
    }

    /// Interval length `Q = data_pitch * n + tail` (63 cycles for the
    /// paper's 8-thread DDR3-1600 system).
    pub fn q(&self) -> u64 {
        self.data_pitch as u64 * self.threads as u64 + self.tail as u64
    }

    /// Peak data-bus utilization `n * tBURST / Q` (~51% for 8 threads).
    pub fn peak_data_utilization(&self, t: &TimingParams) -> f64 {
        self.threads as f64 * t.t_burst as f64 / self.q() as f64
    }

    /// Start cycle of interval `k` (anchor of data slot 0).
    pub fn interval_anchor(&self, k: u64) -> Cycle {
        self.base + k * self.q()
    }

    /// Cycle at which the controller must have collected and ordered the
    /// interval's transactions (first possible command of the interval).
    pub fn decision_cycle(&self, k: u64) -> Cycle {
        let anchor = self.interval_anchor(k) as i64;
        (anchor + self.offsets.read_act.min(self.offsets.write_act)) as Cycle
    }

    /// The interval index whose decision cycle is at or after `cycle`.
    pub fn first_interval_from(&self, cycle: Cycle) -> u64 {
        let dec0 = self.decision_cycle(0) as i64;
        if (cycle as i64) <= dec0 {
            return 0;
        }
        let q = self.q() as i64;
        (((cycle as i64) - dec0 + q - 1) / q) as u64
    }

    /// Cycle when all read data of interval `k` is released to the cores
    /// (the interval's end).
    pub fn release_cycle(&self, k: u64) -> Cycle {
        self.interval_anchor(k) + self.q()
    }

    /// Command times for data slot `j` of interval `k`, given direction.
    pub fn slot_times(&self, k: u64, j: u8, is_write: bool) -> (Cycle, Cycle, Cycle) {
        assert!(j < self.threads);
        let data = self.interval_anchor(k) as i64 + j as i64 * self.data_pitch as i64;
        if is_write {
            (
                (data + self.offsets.write_act) as Cycle,
                (data + self.offsets.write_cas) as Cycle,
                data as Cycle,
            )
        } else {
            (
                (data + self.offsets.read_act) as Cycle,
                (data + self.offsets.read_cas) as Cycle,
                data as Cycle,
            )
        }
    }

    pub fn offsets(&self) -> &SlotOffsets {
        &self.offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_best;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn uniform_rank_schedule_matches_figure_1() {
        let sol = solve_best(&t(), PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        assert_eq!(s.q(), 56);
        let p0 = s.plan(0);
        // Base shift is 22, so slot 0's data transfer is at cycle 22 and
        // its read Activate at cycle 0.
        assert_eq!(p0.read_act, 0);
        assert_eq!(p0.read_cas, 11);
        assert_eq!(p0.read_data, 22);
        assert_eq!(p0.write_act, 6);
        assert_eq!(p0.write_cas, 17);
        assert_eq!(p0.domain, DomainId(0));
        let p1 = s.plan(1);
        assert_eq!(p1.read_data - p0.read_data, 7);
        assert_eq!(p1.domain, DomainId(1));
        // Slot 8 wraps to thread 0, 56 cycles later.
        let p8 = s.plan(8);
        assert_eq!(p8.domain, DomainId(0));
        assert_eq!(p8.read_data - p0.read_data, 56);
    }

    #[test]
    fn decision_precedes_all_commands() {
        let sol = solve_best(&t(), PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        for g in 0..64 {
            let p = s.plan(g);
            assert!(p.decision_cycle <= p.read_act);
            assert!(p.decision_cycle <= p.write_act);
            assert!(p.read_act < p.read_cas && p.read_cas < p.read_data);
            assert!(p.write_act < p.write_cas && p.write_cas < p.write_data);
        }
    }

    #[test]
    fn first_slot_from_is_consistent_with_plan() {
        let sol = solve_best(&t(), PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        for cycle in 0..200u64 {
            let g = s.first_slot_from(cycle);
            assert!(s.plan(g).decision_cycle >= cycle, "cycle {cycle} slot {g}");
            if g > 0 {
                assert!(s.plan(g - 1).decision_cycle < cycle);
            }
        }
    }

    #[test]
    fn triple_alternation_classes_rotate_per_sub_interval() {
        let s = SlotSchedule::triple_alternation(&t(), 8).unwrap();
        assert_eq!(s.slot_pitch(), 15);
        assert_eq!(s.q(), 360);
        // Sub-interval 0: thread i gets class i % 3 (threads 0,3,6 ->
        // multiples of three, per Figure 2).
        for i in 0..8u64 {
            assert_eq!(s.plan(i).bank_class, Some((i % 3) as u8));
        }
        // Sub-interval 1: thread 0's class becomes 2 ("multiples of three
        // plus two").
        assert_eq!(s.plan(8).bank_class, Some(2));
        assert_eq!(s.plan(9).bank_class, Some(0));
        // Sub-interval 3 wraps back to the initial assignment.
        for i in 0..8u64 {
            assert_eq!(s.plan(24 + i).bank_class, s.plan(i).bank_class);
        }
    }

    #[test]
    fn triple_alternation_same_class_slots_are_43_plus_apart() {
        let s = SlotSchedule::triple_alternation(&t(), 8).unwrap();
        let turn = t().same_bank_wr_turnaround() as i64;
        let plans: Vec<SlotPlan> = (0..96).map(|g| s.plan(g)).collect();
        for (i, a) in plans.iter().enumerate() {
            for b in plans.iter().skip(i + 1) {
                if a.bank_class == b.bank_class {
                    let gap = b.read_act as i64 - a.write_act as i64;
                    assert!(gap >= turn, "slots {} and {} only {} apart", a.slot, b.slot, gap);
                }
            }
        }
    }

    #[test]
    fn reordered_bp_matches_paper_q_and_utilization() {
        let s = ReorderedBpSchedule::new(&t(), 8);
        assert_eq!(s.q(), 63); // Section 4.2: "The value of Q is therefore 63"
        let u = s.peak_data_utilization(&t());
        assert!((u - 32.0 / 63.0).abs() < 1e-12); // ~51%
    }

    #[test]
    fn reordered_bp_write_to_read_tail_holds_across_intervals() {
        let timing = t();
        let s = ReorderedBpSchedule::new(&timing, 8);
        // Worst case: slot 7 of interval 0 is a write, slot 0 of interval
        // 1 is a read.
        let (_, wcas, _) = s.slot_times(0, 7, true);
        let (_, rcas, _) = s.slot_times(1, 0, false);
        assert!(
            rcas >= wcas + timing.wr_to_rd_same_rank() as Cycle,
            "write CAS {wcas} -> read CAS {rcas}"
        );
    }

    #[test]
    fn reordered_bp_interval_iteration() {
        let s = ReorderedBpSchedule::new(&t(), 8);
        let k = s.first_interval_from(500);
        assert!(s.decision_cycle(k) >= 500);
        assert!(k == 0 || s.decision_cycle(k - 1) < 500);
        assert_eq!(s.release_cycle(0), s.interval_anchor(0) + 63);
    }
}
