//! Memory transactions as seen by the memory controller.

use crate::domain::DomainId;
use fsmc_dram::geometry::LineAddr;
use fsmc_dram::{Cycle, Location};
use std::fmt;

/// Unique transaction identifier, assigned by the producer (core/sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Why a transaction exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// A demand read or write from a core.
    Demand,
    /// A controller-inserted dummy operation (FS shaping).
    Dummy,
    /// A prefetch issued in a slot that would otherwise be a dummy.
    Prefetch,
}

/// One read or write memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    pub id: TxnId,
    pub domain: DomainId,
    pub loc: Location,
    /// The domain-local line address the location was mapped from (fed to
    /// the per-domain prefetcher; zero for controller-generated traffic).
    pub local_addr: LineAddr,
    pub is_write: bool,
    /// DRAM cycle at which the transaction reached the controller.
    pub arrival: Cycle,
    pub kind: TxnKind,
}

impl Transaction {
    /// A demand read.
    pub fn read(id: TxnId, domain: DomainId, loc: Location, arrival: Cycle) -> Self {
        Transaction {
            id,
            domain,
            loc,
            local_addr: LineAddr(0),
            is_write: false,
            arrival,
            kind: TxnKind::Demand,
        }
    }

    /// A demand write.
    pub fn write(id: TxnId, domain: DomainId, loc: Location, arrival: Cycle) -> Self {
        Transaction {
            id,
            domain,
            loc,
            local_addr: LineAddr(0),
            is_write: true,
            arrival,
            kind: TxnKind::Demand,
        }
    }

    /// Attaches the domain-local address the location was mapped from.
    pub fn with_local_addr(mut self, local: LineAddr) -> Self {
        self.local_addr = local;
        self
    }

    /// True for controller-generated traffic (dummy or prefetch).
    pub fn is_synthetic(&self) -> bool {
        self.kind != TxnKind::Demand
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} d{} {} {} ({:?})",
            self.id,
            self.domain.0,
            if self.is_write { "W" } else { "R" },
            self.loc,
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_dram::geometry::{BankId, ChannelId, ColId, RankId, RowId};

    #[test]
    fn constructors_and_predicates() {
        let loc = Location {
            channel: ChannelId(0),
            rank: RankId(1),
            bank: BankId(2),
            row: RowId(3),
            col: ColId(4),
        };
        let r = Transaction::read(TxnId(1), DomainId(0), loc, 10);
        assert!(!r.is_write);
        assert!(!r.is_synthetic());
        let w = Transaction::write(TxnId(2), DomainId(1), loc, 11);
        assert!(w.is_write);
        let d = Transaction { kind: TxnKind::Dummy, ..r };
        assert!(d.is_synthetic());
    }
}
