//! Property test for the degraded-mode schedule: the conservative
//! fallback pipeline is solved against worst-case adjacency assumptions
//! (every pair of slots may hit the same bank), so the command stream it
//! certifies must replay cleanly through the independent pairwise timing
//! checker for *any* internally consistent timing parameters — including
//! a worst-case single-bank pileup.

use fsmc_core::solver::conservative_pipeline;
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, Geometry, RankId, RowId};
use fsmc_dram::{TimingChecker, TimingParams};
use proptest::prelude::*;

/// Randomized DDR3-shaped timing parameters that keep the JEDEC
/// identities the models rely on: `tRC = tRAS + tRP`, `tRAS > tRCD`,
/// `tCCD >= tBURST`, `tFAW >= 4 * tRRD`.
fn timing_strategy() -> impl Strategy<Value = TimingParams> {
    // Derived fields come from independent slack draws, so every
    // generated set satisfies the identities by construction.
    let bases = (5u32..13, 5u32..13, 3u32..9, 2u32..10, 2u32..5);
    let slacks = (4u32..24, 0u32..4, 4u32..12, 3u32..9);
    let extras = (3u32..9, 3u32..7, 1u32..4, 0u32..6);
    (bases, slacks, extras).prop_map(
        |(
            (t_rcd, t_cas, t_cwd, t_rp, half_burst),
            (ras_slack, ccd_slack, t_wr, t_wtr),
            (t_rtp, t_rrd, t_rtrs, faw_slack),
        )| {
            let t_burst = 2 * half_burst;
            let t_ras = t_rcd + ras_slack;
            TimingParams {
                t_rcd,
                t_cas,
                t_cwd,
                t_rp,
                t_burst,
                t_ras,
                t_rc: t_ras + t_rp,
                t_ccd: t_burst + ccd_slack,
                t_wr,
                t_wtr,
                t_rtp,
                t_rrd,
                t_rtrs,
                t_faw: 4 * t_rrd + faw_slack,
                ..TimingParams::ddr3_1600()
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Materialising the conservative pipeline's slots as a single-bank
    /// close-page pileup (the adjacency it certifies against) never
    /// produces a checker violation.
    #[test]
    fn conservative_pipeline_survives_single_bank_pileups(
        t in timing_strategy(),
        writes in prop::collection::vec(any::<bool>(), 24),
    ) {
        // Infeasible parameter sets are allowed to be rejected; the
        // property covers every set the solver accepts.
        if let Ok(sol) = conservative_pipeline(&t, 4) {
        let l = sol.l as i64;
        let base = -sol.offsets.min_offset(); // keep absolute cycles >= 0
        let (rank, bank) = (RankId(0), BankId(0));
        let mut log = Vec::with_capacity(writes.len() * 2);
        for (k, &is_write) in writes.iter().enumerate() {
            let a = base + k as i64 * l;
            let row = RowId(k as u32 % 8);
            let (act_off, cas_off) = if is_write {
                (sol.offsets.write_act, sol.offsets.write_cas)
            } else {
                (sol.offsets.read_act, sol.offsets.read_cas)
            };
            let cas = if is_write {
                Command::write_ap(rank, bank, row, ColId(0))
            } else {
                Command::read_ap(rank, bank, row, ColId(0))
            };
            log.push(TimedCommand::new(Command::activate(rank, bank, row), (a + act_off) as u64));
            log.push(TimedCommand::new(cas, (a + cas_off) as u64));
        }
        let checker = TimingChecker::new(Geometry::paper_default(), t);
        let violations = checker.check(&log);
        prop_assert!(
            violations.is_empty(),
            "l={} anchor={:?} t={:?}: {:?}",
            sol.l,
            sol.anchor,
            t,
            violations.first()
        );
        }
    }
}
