//! Property tests for the FS scheduler as a whole: legality and exact
//! non-interference under adversarial (randomised) traffic.

use fsmc_core::domain::DomainId;
use fsmc_core::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
use fsmc_core::sched::MemoryController;
use fsmc_core::txn::{Transaction, TxnId};
use fsmc_dram::geometry::{Geometry, LineAddr};
use fsmc_dram::{Cycle, TimingChecker, TimingParams};
use proptest::prelude::*;

/// One randomly timed enqueue: (domain, local line, is_write, gap before).
#[derive(Debug, Clone, Copy)]
struct Arrival {
    domain: u8,
    local: u64,
    is_write: bool,
    gap: u8,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (0u8..8, 0u64..100_000, any::<bool>(), 0u8..40)
        .prop_map(|(domain, local, is_write, gap)| Arrival { domain, local, is_write, gap })
}

fn mk(variant: FsVariant) -> FsScheduler {
    FsScheduler::new(
        Geometry::paper_default(),
        TimingParams::ddr3_1600(),
        8,
        variant,
        false,
        EnergyOptions::default(),
    )
}

fn drive(mc: &mut FsScheduler, arrivals: &[Arrival], cycles: u64) -> Vec<(u64, Cycle)> {
    let geom = Geometry::paper_default();
    let policy = mc.kind().partition_policy();
    let mut completions = Vec::new();
    let mut next = 0usize;
    let mut next_at: Cycle = arrivals.first().map(|a| a.gap as Cycle).unwrap_or(u64::MAX);
    let mut id = 0u64;
    for c in 0..cycles {
        while next < arrivals.len() && next_at <= c {
            let a = arrivals[next];
            if mc.can_accept(DomainId(a.domain)) {
                let loc = policy.map(&geom, DomainId(a.domain), LineAddr(a.local));
                let txn = if a.is_write {
                    Transaction::write(TxnId(id), DomainId(a.domain), loc, c)
                } else {
                    Transaction::read(TxnId(id), DomainId(a.domain), loc, c)
                };
                id += 1;
                let _ = mc.enqueue(txn);
            }
            next += 1;
            next_at =
                c.saturating_add(arrivals.get(next).map(|a| a.gap as Cycle).unwrap_or(u64::MAX));
        }
        for comp in mc.tick(c) {
            completions.push((comp.txn.id.0, comp.finish));
        }
    }
    completions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any arrival pattern, every variant: the command stream is legal.
    #[test]
    fn fs_streams_are_always_legal(
        arrivals in prop::collection::vec(arrival(), 0..120),
        variant_sel in 0usize..5,
    ) {
        let variant = [
            FsVariant::RankPartitioned,
            FsVariant::BankPartitioned,
            FsVariant::ReorderedBankPartitioned,
            FsVariant::NoPartitionNaive,
            FsVariant::TripleAlternation,
        ][variant_sel];
        let mut mc = mk(variant);
        mc.record_commands();
        drive(&mut mc, &arrivals, 6_000);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        prop_assert!(v.is_empty(), "{variant:?}: first violation: {}", v[0]);
    }

    /// Exact non-interference: domain 0's completions are identical for
    /// *any two* behaviours of the other domains.
    #[test]
    fn fs_domain0_service_is_corunner_invariant(
        victim in prop::collection::vec((0u64..10_000, any::<bool>(), 1u8..30), 1..30),
        others_a in prop::collection::vec(arrival(), 0..100),
        others_b in prop::collection::vec(arrival(), 0..100),
        variant_sel in 0usize..3,
    ) {
        let variant = [
            FsVariant::RankPartitioned,
            FsVariant::BankPartitioned,
            FsVariant::TripleAlternation,
        ][variant_sel];
        let run = |others: &[Arrival]| -> Vec<(u64, Cycle)> {
            // Interleave: victim arrivals on domain 0 (ids < 1000),
            // co-runner arrivals on domains 1..8.
            let mut arrivals: Vec<Arrival> = victim
                .iter()
                .map(|&(local, w, gap)| Arrival { domain: 0, local, is_write: w, gap })
                .collect();
            arrivals.extend(others.iter().map(|a| Arrival { domain: 1 + a.domain % 7, ..*a }));
            // Keep victim arrival *times* fixed: sort by nothing; instead
            // drive two queues independently.
            let mut mc = mk(variant);
            let geom = Geometry::paper_default();
            let policy = mc.kind().partition_policy();
            let mut completions = Vec::new();
            let mut vic_idx = 0usize;
            let mut vic_at: Cycle = victim.first().map(|v| v.2 as Cycle).unwrap_or(u64::MAX);
            let mut oth_idx = 0usize;
            let mut oth_at: Cycle = others.first().map(|a| a.gap as Cycle).unwrap_or(u64::MAX);
            let mut id = 0u64;
            for c in 0..6_000u64 {
                while vic_idx < victim.len() && vic_at <= c {
                    let (local, w, _) = victim[vic_idx];
                    if mc.can_accept(DomainId(0)) {
                        let loc = policy.map(&geom, DomainId(0), LineAddr(local));
                        let txn = if w {
                            Transaction::write(TxnId(id), DomainId(0), loc, c)
                        } else {
                            Transaction::read(TxnId(id), DomainId(0), loc, c)
                        };
                        id += 1;
                        let _ = mc.enqueue(txn);
                        vic_idx += 1;
                    } else {
                        break; // deterministic retry next cycle
                    }
                    vic_at = c.saturating_add(victim.get(vic_idx).map(|v| v.2 as Cycle).unwrap_or(u64::MAX));
                }
                while oth_idx < others.len() && oth_at <= c {
                    let a = others[oth_idx];
                    let d = DomainId(1 + a.domain % 7);
                    if mc.can_accept(d) {
                        let loc = policy.map(&geom, d, LineAddr(a.local));
                        let txn = if a.is_write {
                            Transaction::write(TxnId(1_000_000 + oth_idx as u64), d, loc, c)
                        } else {
                            Transaction::read(TxnId(1_000_000 + oth_idx as u64), d, loc, c)
                        };
                        let _ = mc.enqueue(txn);
                    }
                    oth_idx += 1;
                    oth_at = c.saturating_add(others.get(oth_idx).map(|a| a.gap as Cycle).unwrap_or(u64::MAX));
                }
                for comp in mc.tick(c) {
                    if comp.txn.domain == DomainId(0) {
                        completions.push((comp.txn.id.0, comp.finish));
                    }
                }
            }
            completions
        };
        prop_assert_eq!(run(&others_a), run(&others_b), "{:?} leaked across co-runner change", variant);
    }
}
