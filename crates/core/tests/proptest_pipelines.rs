//! Property tests for the paper's central claim: an FS pipeline is free
//! of resource conflicts for *any* combination of reads and writes, for
//! every variant and thread count — verified by replaying materialised
//! schedules through the independent timing checker.

use fsmc_core::solver::{
    solve, solve_for_threads, Anchor, PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, Geometry, RankId, RowId};
use fsmc_dram::{TimingChecker, TimingParams};
use proptest::prelude::*;

fn checker() -> TimingChecker {
    TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600())
}

/// Materialise `slots` slots of a uniform schedule into commands.
/// `rank_of`/`bank_of` encode the partition discipline; rows rotate so
/// every access is an empty-row access (as FS mandates).
fn materialise<R, B>(
    schedule: &SlotSchedule,
    mix: &[bool],
    slots: u64,
    rank_of: R,
    bank_of: B,
) -> Vec<TimedCommand>
where
    R: Fn(u64) -> u8,
    B: Fn(u64, Option<u8>) -> u8,
{
    let mut log = Vec::new();
    for g in 0..slots {
        let p = schedule.plan(g);
        let is_write = mix[(g % mix.len() as u64) as usize];
        let rank = RankId(rank_of(g));
        let bank = BankId(bank_of(g, p.bank_class));
        let row = RowId((g % 512) as u32);
        let (act, cas) =
            if is_write { (p.write_act, p.write_cas) } else { (p.read_act, p.read_cas) };
        log.push(TimedCommand::new(Command::activate(rank, bank, row), act));
        let cas_cmd = if is_write {
            Command::write_ap(rank, bank, row, ColId(0))
        } else {
            Command::read_ap(rank, bank, row, ColId(0))
        };
        log.push(TimedCommand::new(cas_cmd, cas));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank partitioning: any mix, 7/8 threads, each thread on its own
    /// rank, any bank choice within the rank.
    #[test]
    fn rank_partitioned_pipeline_is_conflict_free(
        mix in prop::collection::vec(any::<bool>(), 1..32),
        banks in prop::collection::vec(0u8..8, 64),
        threads in 7u8..=8,
    ) {
        let t = TimingParams::ddr3_1600();
        let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        let s = SlotSchedule::uniform(sol, threads);
        let n = threads as u64;
        let log = materialise(
            &s,
            &mix,
            56,
            |g| (g % n) as u8,
            // Rotate banks per same-thread visit so the 43-cycle same-bank
            // case never arises (the scheduler guarantees this choice).
            |g, _| banks[((g / n) % 8) as usize % banks.len()].wrapping_add((g % n) as u8) % 8,
        );
        let v = checker().check(&log);
        prop_assert!(v.is_empty(), "first violation: {}", v[0]);
    }

    /// Bank partitioning: any mix, slots may share ranks arbitrarily but
    /// never a bank (bank = thread id striped across ranks).
    #[test]
    fn bank_partitioned_pipeline_is_conflict_free(
        mix in prop::collection::vec(any::<bool>(), 1..32),
        ranks in prop::collection::vec(0u8..8, 64),
    ) {
        let t = TimingParams::ddr3_1600();
        let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let log = materialise(
            &s,
            &mix,
            48,
            // Worst case: everyone piles onto ranks chosen adversarially.
            |g| ranks[(g % ranks.len() as u64) as usize],
            |g, _| (g % 8) as u8,
        );
        let v = checker().check(&log);
        prop_assert!(v.is_empty(), "first violation: {}", v[0]);
    }

    /// Naive no-partitioning: any mix, *everything* may target the same
    /// bank of the same rank.
    #[test]
    fn naive_np_pipeline_survives_single_bank_pileup(
        mix in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        let t = TimingParams::ddr3_1600();
        let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8).unwrap();
        let s = SlotSchedule::uniform(sol, 8);
        let log = materialise(&s, &mix, 32, |_| 3, |_, _| 5);
        let v = checker().check(&log);
        prop_assert!(v.is_empty(), "first violation: {}", v[0]);
    }

    /// Triple alternation: any mix; banks restricted to the slot's group,
    /// chosen adversarially within it (including same-bank reuse across
    /// groups 3 slots apart) on a single shared rank.
    #[test]
    fn triple_alternation_pipeline_is_conflict_free(
        mix in prop::collection::vec(any::<bool>(), 1..32),
        picks in prop::collection::vec(0u8..3, 96),
    ) {
        let t = TimingParams::ddr3_1600();
        let s = SlotSchedule::triple_alternation(&t, 8).unwrap();
        let log = materialise(
            &s,
            &mix,
            96,
            |_| 0, // worst case: one rank for everyone
            |g, class| {
                let c = class.expect("TA always has a class");
                // Banks with bank % 3 == c are {c, c+3, c+6} (c+6 < 8 only
                // for c < 2).
                let options: &[u8] = if c < 2 { &[0, 3, 6] } else { &[0, 3] };
                c + options[picks[(g % 96) as usize] as usize % options.len()]
            },
        );
        let v = checker().check(&log);
        prop_assert!(v.is_empty(), "first violation: {}", v[0]);
    }

    /// Reordered bank partitioning: any read count r in 0..=8 per
    /// interval, any rank spread, writes after reads.
    #[test]
    fn reordered_bp_pipeline_is_conflict_free(
        read_counts in prop::collection::vec(0u8..=8, 8),
        ranks in prop::collection::vec(0u8..8, 64),
    ) {
        let t = TimingParams::ddr3_1600();
        let s = ReorderedBpSchedule::new(&t, 8);
        let mut log = Vec::new();
        for (k, &r) in read_counts.iter().enumerate() {
            for j in 0..8u8 {
                let is_write = j >= r;
                let (act, cas, _) = s.slot_times(k as u64, j, is_write);
                let rank = RankId(ranks[(k * 8 + j as usize) % ranks.len()]);
                let bank = BankId(j); // bank-partitioned by domain
                let row = RowId(k as u32 % 512);
                log.push(TimedCommand::new(Command::activate(rank, bank, row), act));
                let cas_cmd = if is_write {
                    Command::write_ap(rank, bank, row, ColId(0))
                } else {
                    Command::read_ap(rank, bank, row, ColId(0))
                };
                log.push(TimedCommand::new(cas_cmd, cas));
            }
        }
        let v = checker().check(&log);
        prop_assert!(v.is_empty(), "first violation: {}", v[0]);
    }

    /// The solver's answer is minimal: no smaller pitch satisfies the
    /// constraint set it was derived from.
    #[test]
    fn solved_pitch_is_minimal(
        anchor_sel in 0usize..3,
        level_sel in 0usize..3,
    ) {
        use fsmc_core::solver::build_constraints;
        let t = TimingParams::ddr3_1600();
        let anchor = Anchor::all()[anchor_sel];
        let level = [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None][level_sel];
        let sol = solve(&t, anchor, level).unwrap();
        let (srf, sbf) = match level {
            PartitionLevel::Rank => (u32::MAX, u32::MAX),
            PartitionLevel::Bank => (1, u32::MAX),
            PartitionLevel::None => (1, 1),
        };
        let cs = build_constraints(&t, anchor, srf, sbf);
        for l in 1..sol.l {
            prop_assert!(
                cs.iter().any(|c| !c.satisfied_by(l)),
                "{anchor:?}/{level:?}: pitch {l} < {} also satisfies all constraints",
                sol.l
            );
        }
        prop_assert!(cs.iter().all(|c| c.satisfied_by(sol.l)));
    }
}
