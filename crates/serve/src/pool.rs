//! The worker-process pool: deadline watchdog, retry with capped
//! exponential backoff, poisoning, and graceful degradation.
//!
//! Each job attempt is a **child process** (not a thread): the spec line
//! goes to the worker's stdin, the result payload comes back on its
//! stdout. Running simulations out-of-process is what makes the service
//! crash-tolerant — a worker that segfaults, is OOM-killed, or wedges
//! takes down one attempt, not the daemon — and sidesteps the
//! single-process `FSMC_THREADS` ceiling, since each worker is its own
//! scheduling unit.
//!
//! The per-attempt state machine:
//!
//! ```text
//!            spawn ──► exit 0 ──────────────► success (payload)
//!              │        exit 3 ─────────────► typed error    ─┐ retry with
//!              │        other exit / signal ► crash           ├ capped
//!              └─ deadline exceeded ─ kill ─► timeout        ─┘ backoff
//!                                                              │
//!                     after `max_attempts` ◄───────────────────┘
//!                     the job is POISONED: a structured
//!                     [`FailureRecord`] with attempt count, reason,
//!                     and the last typed error (fault provenance
//!                     included in its text) is the job's result.
//! ```
//!
//! Degradation: a streak of crashed/timed-out attempts shrinks the
//! pool's concurrency limit (never below one) so a sick machine drains
//! slowly instead of thrashing; successes grow it back to full width.
//!
//! The built-in [`ChaosSpec`] harness deterministically kills or hangs
//! attempts (seeded per `(job, attempt)`), and **never faults a job's
//! final attempt** — so a chaos campaign always terminates with the
//! byte-identical results of the clean run, which is exactly the
//! robustness property the CI smoke test asserts.

use fsmc_sim::spec::{sha256_hex, FailureRecord};
use fsmc_sim::SplitMix64;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Deterministic fault injection for the pool (the service-level
/// analogue of the simulator's `FaultPlan`).
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Percent of attempts killed shortly after spawn.
    pub kill_pct: u8,
    /// Percent of attempts forced to hang until the deadline.
    pub hang_pct: u8,
    pub seed: u64,
}

/// Environment variable the chaos harness sets on a child it wants to
/// wedge; the `job-exec` worker honours it by sleeping forever.
pub const HANG_ENV: &str = "FSMC_JOB_EXEC_HANG";

#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Full-width concurrency (degradation shrinks below this).
    pub workers: usize,
    /// Worker argv: `worker_cmd[0]` is the program, the rest its
    /// arguments. The spec line is written to the worker's stdin.
    pub worker_cmd: Vec<String>,
    /// Per-attempt deadline enforced by the watchdog.
    pub timeout_ms: u64,
    /// Attempts before the job is poisoned.
    pub max_attempts: u32,
    /// First retry delay; doubles per retry up to `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    pub chaos: Option<ChaosSpec>,
}

/// How one attempt ended.
#[derive(Debug)]
enum Attempt {
    Success(String),
    /// Worker exited 3: a typed, deterministic simulation error.
    TypedError(String),
    Crash(String),
    Timeout,
}

/// Pool counters, exported through `fsmc status`.
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Child processes that ran a simulation to completion.
    pub simulations: AtomicU64,
    /// Attempts re-run after a crash/timeout/typed error.
    pub retries: AtomicU64,
    /// Jobs that exhausted their attempts.
    pub poisoned: AtomicU64,
}

/// The pool itself: stateless per job, shared counters and degradation
/// state across jobs. Server worker threads call [`WorkerPool::run_job`]
/// concurrently; the pool gates admission on its (shrinkable) limit.
pub struct WorkerPool {
    opts: PoolOptions,
    /// Current concurrency limit (degradation shrinks, success grows).
    active_limit: AtomicUsize,
    /// Attempts currently inside a child process.
    running: AtomicUsize,
    /// Consecutive crashed/timed-out attempts, across jobs.
    crash_streak: AtomicUsize,
    pub counters: PoolCounters,
}

/// Crash streak length that costs the pool one slot of width.
const DEGRADE_STREAK: usize = 3;

impl WorkerPool {
    pub fn new(opts: PoolOptions) -> Self {
        let workers = opts.workers.max(1);
        WorkerPool {
            opts: PoolOptions { workers, ..opts },
            active_limit: AtomicUsize::new(workers),
            running: AtomicUsize::new(0),
            crash_streak: AtomicUsize::new(0),
            counters: PoolCounters::default(),
        }
    }

    pub fn width(&self) -> usize {
        self.opts.workers
    }

    /// The current (possibly degraded) concurrency limit.
    pub fn current_limit(&self) -> usize {
        self.active_limit.load(Ordering::Relaxed)
    }

    /// Runs one job to a final outcome: the result payload, or the
    /// structured failure record of a poisoned job. Blocks while the
    /// pool is at its concurrency limit.
    pub fn run_job(&self, key: &str, spec_line: &str) -> Result<String, FailureRecord> {
        let mut last: Option<(&'static str, String)> = None;
        for attempt in 0..self.opts.max_attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(self.backoff_ms(attempt)));
            }
            self.acquire_slot();
            let outcome = self.run_attempt(key, spec_line, attempt);
            self.running.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Attempt::Success(payload) => {
                    self.note_success();
                    self.counters.simulations.fetch_add(1, Ordering::Relaxed);
                    return Ok(payload);
                }
                Attempt::TypedError(e) => {
                    // Deterministic failures don't indicate a sick
                    // machine; they don't shrink the pool.
                    last = Some(("error", e));
                }
                Attempt::Crash(detail) => {
                    self.note_crash();
                    last = Some(("crash", detail));
                }
                Attempt::Timeout => {
                    self.note_crash();
                    last = Some((
                        "timeout",
                        format!("worker exceeded {} ms deadline", self.opts.timeout_ms),
                    ));
                }
            }
        }
        self.counters.poisoned.fetch_add(1, Ordering::Relaxed);
        let (reason, error) = last.expect("max_attempts >= 1");
        Err(FailureRecord { attempts: self.opts.max_attempts, reason: reason.into(), error })
    }

    /// Capped exponential backoff before retry number `attempt`.
    fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = (attempt - 1).min(16);
        (self.opts.backoff_base_ms << shift).min(self.opts.backoff_cap_ms)
    }

    /// Blocks until the pool is under its (possibly degraded) limit,
    /// then claims a slot.
    fn acquire_slot(&self) {
        loop {
            let limit = self.active_limit.load(Ordering::Relaxed).max(1);
            let running = self.running.load(Ordering::Relaxed);
            if running < limit
                && self
                    .running
                    .compare_exchange(running, running + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn note_crash(&self) {
        let streak = self.crash_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak.is_multiple_of(DEGRADE_STREAK) {
            // Workers are dying faster than they finish: give back one
            // slot of concurrency (never below one).
            let _ = self
                .active_limit
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| (l > 1).then_some(l - 1));
        }
    }

    fn note_success(&self) {
        self.crash_streak.store(0, Ordering::Relaxed);
        let workers = self.opts.workers;
        let _ = self
            .active_limit
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| (l < workers).then_some(l + 1));
    }

    /// The chaos verdict for one `(job, attempt)`: deterministic in the
    /// chaos seed, and never fired on the final attempt (so campaigns
    /// always converge to the clean result).
    fn chaos_action(&self, key: &str, attempt: u32) -> (bool, bool) {
        let Some(chaos) = self.opts.chaos else { return (false, false) };
        if attempt + 1 >= self.opts.max_attempts {
            return (false, false);
        }
        let key_word = u64::from_str_radix(&sha256_hex(key.as_bytes())[..16], 16).unwrap_or(0);
        let mut rng = SplitMix64::new(
            chaos.seed ^ key_word ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let roll = (rng.next_u64() % 100) as u8;
        let kill = roll < chaos.kill_pct;
        let hang = !kill && roll < chaos.kill_pct.saturating_add(chaos.hang_pct);
        (kill, hang)
    }

    /// One child-process attempt under the watchdog.
    fn run_attempt(&self, key: &str, spec_line: &str, attempt: u32) -> Attempt {
        use std::io::Read;
        use std::io::Write;
        let (chaos_kill, chaos_hang) = self.chaos_action(key, attempt);
        let mut cmd = Command::new(&self.opts.worker_cmd[0]);
        cmd.args(&self.opts.worker_cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if chaos_hang {
            cmd.env(HANG_ENV, "1");
        }
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => return Attempt::Crash(format!("spawn failed: {e}")),
        };
        let stdin = child.stdin.take();
        if chaos_kill {
            // Simulated OOM-kill: holding stdin open keeps the worker
            // blocked on its spec read, so the SIGKILL reliably lands
            // mid-job rather than racing a fast completion.
            std::thread::sleep(Duration::from_millis(2));
            let _ = child.kill();
        } else if let Some(mut stdin) = stdin {
            // A worker that exits before reading breaks the pipe; that
            // surfaces as its exit status, not as a daemon error.
            let _ = writeln!(stdin, "{spec_line}");
        }
        let deadline = Instant::now() + Duration::from_millis(self.opts.timeout_ms);
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Attempt::Timeout;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Attempt::Crash(format!("wait failed: {e}"));
                }
            }
        };
        let mut stdout = String::new();
        if let Some(mut out) = child.stdout.take() {
            let _ = out.read_to_string(&mut stdout);
        }
        match status.code() {
            Some(0) => Attempt::Success(stdout),
            // Exit 3 is the worker's "typed simulation error" code; its
            // stdout is the rendered FsmcError (provenance included).
            Some(3) => Attempt::TypedError(stdout.trim_end().to_string()),
            Some(code) => Attempt::Crash(format!("worker exited with status {code}")),
            None => Attempt::Crash("worker killed by signal".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), script.into()]
    }

    fn opts(worker_cmd: Vec<String>) -> PoolOptions {
        PoolOptions {
            workers: 2,
            worker_cmd,
            timeout_ms: 1_000,
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 8,
            chaos: None,
        }
    }

    #[test]
    fn healthy_worker_returns_its_stdout() {
        let pool = WorkerPool::new(opts(sh("read line; printf 'payload for %s\\n' \"$line\"")));
        let out = pool.run_job("k", "spec goes here").unwrap();
        assert_eq!(out, "payload for spec goes here\n");
        assert_eq!(pool.counters.simulations.load(Ordering::Relaxed), 1);
        assert_eq!(pool.counters.retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn crashing_worker_is_retried_then_poisoned() {
        let pool = WorkerPool::new(opts(sh("read line; exit 7")));
        let record = pool.run_job("k", "spec").unwrap_err();
        assert_eq!(record.attempts, 3);
        assert_eq!(record.reason, "crash");
        assert!(record.error.contains("status 7"), "{}", record.error);
        assert_eq!(pool.counters.retries.load(Ordering::Relaxed), 2);
        assert_eq!(pool.counters.poisoned.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn typed_error_exit_code_carries_the_error_text() {
        let pool = WorkerPool::new(opts(sh("read line; echo 'watchdog: no read retired'; exit 3")));
        let record = pool.run_job("k", "spec").unwrap_err();
        assert_eq!(record.reason, "error");
        assert_eq!(record.error, "watchdog: no read retired");
    }

    #[test]
    fn deadline_exceeded_is_killed_and_reported_as_timeout() {
        let mut o = opts(sh("sleep 30"));
        o.timeout_ms = 40;
        o.max_attempts = 2;
        let pool = WorkerPool::new(o);
        let start = Instant::now();
        let record = pool.run_job("k", "spec").unwrap_err();
        assert_eq!(record.reason, "timeout");
        assert!(record.error.contains("40 ms"), "{}", record.error);
        // Two watchdog kills plus backoff, nowhere near 30 s.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let pool = WorkerPool::new(PoolOptions {
            backoff_base_ms: 10,
            backoff_cap_ms: 35,
            max_attempts: 6,
            ..opts(sh("true"))
        });
        let delays: Vec<u64> = (1..6).map(|a| pool.backoff_ms(a)).collect();
        assert_eq!(delays, [10, 20, 35, 35, 35]);
    }

    #[test]
    fn crash_streak_shrinks_the_pool_and_success_restores_it() {
        let pool = WorkerPool::new(PoolOptions {
            workers: 3,
            max_attempts: 4,
            ..opts(sh("read line; exit 9"))
        });
        assert_eq!(pool.current_limit(), 3);
        let _ = pool.run_job("k", "spec"); // 4 crashes -> one degradation step
        assert_eq!(pool.current_limit(), 2);
        let healthy = WorkerPool::new(opts(sh("read line; echo ok")));
        // Degrade by hand, then verify successes grow the limit back.
        healthy.active_limit.store(1, Ordering::Relaxed);
        let _ = healthy.run_job("k", "spec").unwrap();
        assert_eq!(healthy.current_limit(), 2);
    }

    #[test]
    fn chaos_is_deterministic_and_spares_the_final_attempt() {
        let chaos = ChaosSpec { kill_pct: 50, hang_pct: 25, seed: 7 };
        let pool = WorkerPool::new(PoolOptions { chaos: Some(chaos), ..opts(sh("true")) });
        for attempt in 0..3 {
            assert_eq!(
                pool.chaos_action("some-key", attempt),
                pool.chaos_action("some-key", attempt),
                "attempt {attempt} verdict is deterministic"
            );
        }
        // Final attempt (max_attempts - 1 = 2) is never faulted.
        assert_eq!(pool.chaos_action("some-key", 2), (false, false));
        // With 100% kill on a 3-attempt job, attempts 0 and 1 die and
        // the final clean attempt still succeeds.
        let always_kill = ChaosSpec { kill_pct: 100, hang_pct: 0, seed: 1 };
        let pool = WorkerPool::new(PoolOptions {
            chaos: Some(always_kill),
            ..opts(sh("read line; echo survived"))
        });
        let out = pool.run_job("key", "spec").unwrap();
        assert_eq!(out, "survived\n");
        assert_eq!(pool.counters.retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hang_chaos_sets_the_env_and_times_out() {
        let chaos = ChaosSpec { kill_pct: 0, hang_pct: 100, seed: 5 };
        let mut o = opts(sh(&format!(
            "read line; if [ -n \"${HANG_ENV}\" ]; then sleep 30; fi; echo done"
        )));
        o.timeout_ms = 40;
        o.chaos = Some(chaos);
        let pool = WorkerPool::new(o);
        let start = Instant::now();
        // Attempts 0 and 1 hang and are killed by the watchdog; the
        // final attempt runs clean.
        let out = pool.run_job("key", "spec").unwrap();
        assert_eq!(out, "done\n");
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(pool.counters.retries.load(Ordering::Relaxed), 2);
    }
}
