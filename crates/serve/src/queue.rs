//! The bounded admission queue with explicit backpressure.
//!
//! Jobs wait here between the socket and the worker pool. The queue has
//! a hard capacity: a full queue **rejects** new work with a
//! retry-after hint that grows with the rejection streak (callers are
//! told to back off harder the longer overload lasts) rather than
//! buffering without bound. Under *sustained* overload — a streak of
//! consecutive full rejections — a higher-priority arrival may instead
//! **shed** the lowest-priority queued entry and take its place; the
//! shed entry is returned to the caller so its submitter gets a typed
//! answer, never silence. Dequeue order is priority-first (higher value
//! first), FIFO within a priority.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Admission verdict for a push.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit<T> {
    /// Enqueued normally.
    Queued,
    /// Enqueued by shedding this lower-priority entry.
    Shed(T),
    /// Queue full: try again after roughly this many milliseconds.
    Busy { retry_after_ms: u64 },
}

struct State<T> {
    entries: VecDeque<(u8, u64, T)>,
    /// Consecutive pushes that found the queue full; resets on any
    /// successful admit or pop. This is the "sustained overload" signal.
    full_streak: u32,
    seq: u64,
    closed: bool,
}

/// A bounded, priority-ordered, shedding job queue.
pub struct JobQueue<T> {
    capacity: usize,
    /// Full-rejection streak length at which shedding turns on.
    shed_after: u32,
    retry_base_ms: u64,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize, shed_after: u32, retry_base_ms: u64) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            shed_after: shed_after.max(1),
            retry_base_ms: retry_base_ms.max(1),
            state: Mutex::new(State {
                entries: VecDeque::new(),
                full_streak: 0,
                seq: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Offers an entry at `priority` (higher = more urgent).
    pub fn push(&self, priority: u8, item: T) -> Admit<T> {
        let mut s = self.state.lock().expect("queue lock");
        if s.entries.len() < self.capacity {
            s.full_streak = 0;
            let seq = s.seq;
            s.seq += 1;
            s.entries.push_back((priority, seq, item));
            drop(s);
            self.ready.notify_one();
            return Admit::Queued;
        }
        s.full_streak += 1;
        // Sustained overload: make room for strictly more urgent work by
        // shedding the least urgent, most recent entry.
        if s.full_streak >= self.shed_after {
            if let Some(victim_idx) = s
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (p, _, _))| *p < priority)
                .min_by_key(|(_, (p, seq, _))| (*p, std::cmp::Reverse(*seq)))
                .map(|(i, _)| i)
            {
                let (_, _, shed) = s.entries.remove(victim_idx).expect("victim index in range");
                let seq = s.seq;
                s.seq += 1;
                s.entries.push_back((priority, seq, item));
                drop(s);
                self.ready.notify_one();
                return Admit::Shed(shed);
            }
        }
        // Back off harder the longer the overload has lasted.
        let factor = u64::from(s.full_streak.min(16));
        Admit::Busy { retry_after_ms: (self.retry_base_ms * factor).min(10_000) }
    }

    /// Takes the most urgent entry, blocking until one arrives; `None`
    /// once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(best) = s
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(_, (p, seq, _))| (*p, std::cmp::Reverse(*seq)))
                .map(|(i, _)| i)
            {
                s.full_streak = 0;
                let (_, _, item) = s.entries.remove(best).expect("best index in range");
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock");
        }
    }

    /// Closes the queue: current entries still drain, blocked `pop`s
    /// wake, and future pushes report busy forever.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8, 3, 5);
        assert_eq!(q.push(1, "low-a"), Admit::Queued);
        assert_eq!(q.push(5, "high-a"), Admit::Queued);
        assert_eq!(q.push(1, "low-b"), Admit::Queued);
        assert_eq!(q.push(5, "high-b"), Admit::Queued);
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["high-a", "high-b", "low-a", "low-b"]);
    }

    #[test]
    fn full_queue_rejects_with_growing_retry_after() {
        let q = JobQueue::new(2, 100, 5);
        assert_eq!(q.push(0, 1), Admit::Queued);
        assert_eq!(q.push(0, 2), Admit::Queued);
        let Admit::Busy { retry_after_ms: first } = q.push(0, 3) else {
            panic!("expected busy");
        };
        let Admit::Busy { retry_after_ms: second } = q.push(0, 4) else {
            panic!("expected busy");
        };
        assert!(second > first, "{second} > {first}: backoff grows with the streak");
        // A pop relieves the pressure and resets the streak.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(0, 5), Admit::Queued);
        let Admit::Busy { retry_after_ms: reset } = q.push(0, 6) else {
            panic!("expected busy");
        };
        assert_eq!(reset, first);
    }

    #[test]
    fn sustained_overload_sheds_lowest_priority_for_higher() {
        let q = JobQueue::new(2, 3, 5);
        assert_eq!(q.push(1, "victim"), Admit::Queued);
        assert_eq!(q.push(2, "keeper"), Admit::Queued);
        // Not yet sustained: equal/lower priority just bounces.
        assert!(matches!(q.push(9, "early"), Admit::Busy { .. }));
        assert!(matches!(q.push(1, "peer"), Admit::Busy { .. }));
        // Third consecutive full rejection crosses the threshold; the
        // urgent push evicts the lowest-priority entry.
        assert_eq!(q.push(9, "urgent"), Admit::Shed("victim"));
        // Equal priority never sheds, even under sustained overload.
        assert!(matches!(q.push(2, "peer2"), Admit::Busy { .. }));
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["urgent", "keeper"]);
    }

    #[test]
    fn close_wakes_blocked_pop() {
        let q = std::sync::Arc::new(JobQueue::<u32>::new(4, 3, 5));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
