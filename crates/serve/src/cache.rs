//! The crash-safe, content-addressed result cache.
//!
//! Every completed job's result payload is stored under its spec's
//! SHA-256 cache key ([`fsmc_sim::spec::JobSpec::cache_key`]), fanned
//! into `ab/abcd....entry` subdirectories. Entries are written with the
//! durable protocol of [`crate::fsio`] and carry their own integrity
//! envelope — key, payload length, and a payload checksum — verified on
//! every read. An entry that fails any check (truncated by a crash,
//! bit-rotted, hand-edited) is **quarantined** — renamed into
//! `quarantine/` for post-mortem — and reported as a miss, so the job is
//! recomputed rather than a corrupt result served.

use crate::fsio::{write_durable, WriteError};
use fsmc_sim::spec::sha256_hex;
use std::fs;
use std::path::{Path, PathBuf};

/// First line of every cache entry; bumping it invalidates (quarantines)
/// all older entries rather than misreading them.
const ENTRY_MAGIC: &str = "fsmc-cache-v1";

/// Why a read returned no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Miss {
    /// No entry for this key.
    Absent,
    /// An entry existed but failed integrity checks; it has been moved
    /// to the quarantine directory named here.
    Quarantined { reason: String, moved_to: PathBuf },
}

/// The on-disk cache, rooted at a directory (see
/// [`fsmc_sim::env::cache_dir`]).
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    pub fn new(root: PathBuf) -> Self {
        ResultCache { root }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the entry for `key` (two-character fan-out, like git).
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let (shard, _) = key.split_at(2.min(key.len()));
        self.root.join(shard).join(format!("{key}.entry"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Stores `payload` under `key`, durably and atomically.
    ///
    /// # Errors
    ///
    /// The [`WriteError`] of the failed durable-write stage.
    pub fn put(&self, key: &str, payload: &str) -> Result<(), WriteError> {
        let sum = sha256_hex(payload.as_bytes());
        let entry =
            format!("{ENTRY_MAGIC}\nkey={key}\nlen={}\nsum={sum}\n--\n{payload}", payload.len());
        write_durable(&self.entry_path(key), entry.as_bytes())
    }

    /// Looks `key` up, verifying the entry's integrity envelope. Returns
    /// the payload on a clean hit, or a [`Miss`] saying whether the key
    /// was absent or its entry was corrupt (and therefore quarantined).
    pub fn get(&self, key: &str) -> Result<String, Miss> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Err(Miss::Absent),
        };
        match Self::verify(key, &bytes) {
            Ok(payload) => Ok(payload),
            Err(reason) => Err(self.quarantine(key, &path, reason)),
        }
    }

    /// Checks a raw entry against its envelope; returns the payload.
    fn verify(key: &str, bytes: &[u8]) -> Result<String, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_string())?;
        let body = text
            .strip_prefix(&format!("{ENTRY_MAGIC}\n"))
            .ok_or_else(|| format!("missing {ENTRY_MAGIC} header"))?;
        let (envelope, payload) =
            body.split_once("\n--\n").ok_or_else(|| "missing envelope separator".to_string())?;
        let mut stored_key = None;
        let mut stored_len = None;
        let mut stored_sum = None;
        for line in envelope.lines() {
            match line.split_once('=') {
                Some(("key", v)) => stored_key = Some(v),
                Some(("len", v)) => {
                    stored_len = Some(v.parse::<usize>().map_err(|e| format!("len: {e}"))?)
                }
                Some(("sum", v)) => stored_sum = Some(v),
                _ => return Err(format!("unknown envelope line {line:?}")),
            }
        }
        let stored_key = stored_key.ok_or("envelope missing key")?;
        let stored_len = stored_len.ok_or("envelope missing len")?;
        let stored_sum = stored_sum.ok_or("envelope missing sum")?;
        if stored_key != key {
            return Err(format!("entry is for key {stored_key}, looked up as {key}"));
        }
        if stored_len != payload.len() {
            return Err(format!("payload is {} bytes, envelope says {stored_len}", payload.len()));
        }
        let sum = sha256_hex(payload.as_bytes());
        if sum != stored_sum {
            return Err(format!("payload checksum {sum} != envelope {stored_sum}"));
        }
        Ok(payload.to_string())
    }

    /// Moves a corrupt entry aside (never deletes — the bytes are
    /// evidence) and reports the miss.
    fn quarantine(&self, key: &str, path: &Path, reason: String) -> Miss {
        let qdir = self.quarantine_dir();
        let _ = fs::create_dir_all(&qdir);
        // Suffix with the pid so repeated corruption of one key keeps
        // distinct evidence files.
        let dest = qdir.join(format!("{key}.{}.corrupt", std::process::id()));
        match fs::rename(path, &dest) {
            Ok(()) => Miss::Quarantined { reason, moved_to: dest },
            Err(_) => {
                // Rename failed (e.g. raced with another quarantine);
                // remove so the recompute can land cleanly.
                let _ = fs::remove_file(path);
                Miss::Quarantined { reason, moved_to: qdir }
            }
        }
    }

    /// Number of quarantined entries on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.quarantine_dir()).map(|d| d.count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("fsmc-cache-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir)
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";

    #[test]
    fn put_get_round_trips() {
        let cache = scratch("roundtrip");
        assert_eq!(cache.get(KEY), Err(Miss::Absent));
        cache.put(KEY, "payload line 1\npayload line 2\n").unwrap();
        assert_eq!(cache.get(KEY).unwrap(), "payload line 1\npayload line 2\n");
        // Entries fan out under a two-character shard directory.
        assert!(cache.entry_path(KEY).starts_with(cache.root().join("01")));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn truncated_entries_are_quarantined_not_served() {
        let cache = scratch("truncate");
        cache.put(KEY, "the payload\n").unwrap();
        let path = cache.entry_path(KEY);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        match cache.get(KEY) {
            Err(Miss::Quarantined { reason, moved_to }) => {
                assert!(moved_to.exists(), "evidence file kept");
                assert!(!reason.is_empty());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The slot is now free: a recompute lands and reads cleanly.
        assert!(!path.exists());
        cache.put(KEY, "the payload\n").unwrap();
        assert_eq!(cache.get(KEY).unwrap(), "the payload\n");
        assert_eq!(cache.quarantined_count(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn flipped_payload_bits_fail_the_checksum() {
        let cache = scratch("bitrot");
        cache.put(KEY, "reads_completed=12345\n").unwrap();
        let path = cache.entry_path(KEY);
        let tampered = fs::read_to_string(&path).unwrap().replace("12345", "12346");
        fs::write(&path, tampered).unwrap();
        assert!(matches!(cache.get(KEY), Err(Miss::Quarantined { .. })));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn entry_for_the_wrong_key_is_rejected() {
        let cache = scratch("wrongkey");
        cache.put(KEY, "data\n").unwrap();
        let other = KEY.replace('0', "f");
        let moved = fs::read(cache.entry_path(KEY)).unwrap();
        fs::create_dir_all(cache.entry_path(&other).parent().unwrap()).unwrap();
        fs::write(cache.entry_path(&other), moved).unwrap();
        match cache.get(&other) {
            Err(Miss::Quarantined { reason, .. }) => {
                assert!(reason.contains("looked up as"), "{reason}")
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(cache.root());
    }
}
