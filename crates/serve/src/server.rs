//! The `fsmc serve` daemon: socket front-end, job registry, and
//! dispatcher threads gluing the [`crate::queue`], [`crate::pool`] and
//! [`crate::cache`] together.
//!
//! Protocol (one request per connection, line-oriented; the client
//! half-closes after its request and reads the reply to EOF):
//!
//! ```text
//! SUBMIT <priority> <spec line> → CACHED <id> <key>     (cache hit)
//!                               | QUEUED <id> <key>
//!                               | COALESCED <id> <key>  (same key already in flight)
//!                               | BUSY <retry_after_ms> (queue full; back off)
//!                               | ERR <message>         (malformed spec)
//! WAIT <id>                     → DONE <len>␤<payload>
//!                               | FAILED <len>␤<failure record>
//! STATUS                        → human-readable daemon state
//! STATS                         → one machine-readable key=value line
//! PING                          → PONG
//! SHUTDOWN                      → BYE (drain in-flight work and exit)
//! ```
//!
//! Identical specs submitted while one is in flight are **coalesced**
//! onto the running attempt: the simulation is pure, so one execution
//! answers every waiter. A queue entry shed under sustained overload
//! resolves its waiters with a structured `shed` failure record — a
//! typed answer, never silence.

use crate::cache::{Miss, ResultCache};
use crate::pool::{ChaosSpec, PoolOptions, WorkerPool};
use crate::queue::{Admit, JobQueue};
use fsmc_sim::spec::{FailureRecord, JobSpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Clone)]
pub struct ServeOptions {
    pub socket: PathBuf,
    pub cache_dir: PathBuf,
    /// Worker-process pool width.
    pub workers: usize,
    /// Per-attempt deadline (ms).
    pub timeout_ms: u64,
    /// Attempts before a job is poisoned.
    pub max_attempts: u32,
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Worker argv; the spec line is written to the worker's stdin.
    pub worker_cmd: Vec<String>,
    /// Optional deterministic fault injection (kill/hang workers).
    pub chaos: Option<ChaosSpec>,
}

impl ServeOptions {
    /// Options from the `FSMC_*` environment (socket path supplied by
    /// the caller), with the pool running `<current-exe> job-exec`.
    pub fn from_env(socket: PathBuf, worker_cmd: Vec<String>) -> Self {
        ServeOptions {
            socket,
            cache_dir: fsmc_sim::env::cache_dir(),
            workers: fsmc_sim::env::serve_workers(),
            timeout_ms: fsmc_sim::env::job_timeout_ms(),
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            queue_capacity: 256,
            worker_cmd,
            chaos: None,
        }
    }
}

/// Registry state of one submitted job id.
#[derive(Debug, Clone)]
enum JobState {
    Pending,
    Done { payload: String },
    Failed { record: String },
}

#[derive(Default)]
struct Registry {
    by_id: HashMap<u64, JobState>,
    /// Waiters per in-flight cache key (coalescing).
    active_keys: HashMap<String, Vec<u64>>,
    next_id: u64,
}

/// One queued unit of work (all ids for its key live in the registry).
struct WorkItem {
    key: String,
    spec_line: String,
}

struct Shared {
    registry: Mutex<Registry>,
    done: Condvar,
    queue: JobQueue<WorkItem>,
    pool: WorkerPool,
    cache: ResultCache,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shed: AtomicU64,
}

impl Shared {
    /// Resolves every id waiting on `key` with the final state.
    fn complete(&self, key: &str, state: JobState) {
        let mut reg = self.registry.lock().expect("registry lock");
        for id in reg.active_keys.remove(key).unwrap_or_default() {
            reg.by_id.insert(id, state.clone());
        }
        drop(reg);
        self.done.notify_all();
    }
}

/// Runs the daemon until a `SHUTDOWN` request: binds the socket, spawns
/// the dispatcher threads, and serves connections. Returns once the
/// daemon has drained and the socket file is removed.
///
/// # Errors
///
/// An [`std::io::Error`] if the socket cannot be bound.
pub fn serve(opts: ServeOptions) -> std::io::Result<()> {
    // A stale socket file from a crashed daemon would make bind fail;
    // replacing it is exactly the crash-recovery the service promises.
    let _ = std::fs::remove_file(&opts.socket);
    if let Some(dir) = opts.socket.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let listener = UnixListener::bind(&opts.socket)?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        registry: Mutex::new(Registry::default()),
        done: Condvar::new(),
        queue: JobQueue::new(opts.queue_capacity, 3, 25),
        pool: WorkerPool::new(PoolOptions {
            workers: opts.workers,
            worker_cmd: opts.worker_cmd.clone(),
            timeout_ms: opts.timeout_ms,
            max_attempts: opts.max_attempts,
            backoff_base_ms: opts.backoff_base_ms,
            backoff_cap_ms: opts.backoff_cap_ms,
            chaos: opts.chaos,
        }),
        cache: ResultCache::new(opts.cache_dir.clone()),
        shutdown: AtomicBool::new(false),
        submitted: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
        shed: AtomicU64::new(0),
    });
    eprintln!(
        "fsmc serve: listening on {} ({} workers, {} ms deadline, cache {})",
        opts.socket.display(),
        opts.workers,
        opts.timeout_ms,
        opts.cache_dir.display()
    );
    let dispatchers: Vec<_> = (0..opts.workers.max(1))
        .map(|_| {
            let shared = shared.clone();
            std::thread::spawn(move || dispatch_loop(&shared))
        })
        .collect();
    let mut connections = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                connections.push(std::thread::spawn(move || handle_connection(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("fsmc serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        connections.retain(|h| !h.is_finished());
    }
    // Drain: no new work, finish what's queued, answer the last waiters.
    shared.queue.close();
    for d in dispatchers {
        let _ = d.join();
    }
    for c in connections {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(&opts.socket);
    eprintln!("fsmc serve: shut down");
    Ok(())
}

/// A dispatcher thread: pull the most urgent job, run it on the worker
/// pool, persist and publish the outcome.
fn dispatch_loop(shared: &Shared) {
    while let Some(item) = shared.queue.pop() {
        let state = match shared.pool.run_job(&item.key, &item.spec_line) {
            Ok(payload) => {
                if let Err(e) = shared.cache.put(&item.key, &payload) {
                    // The result is still correct and delivered; only
                    // its durability is degraded.
                    eprintln!("fsmc serve: could not persist {}: {e}", item.key);
                }
                JobState::Done { payload }
            }
            Err(record) => JobState::Failed { record: record.encode() },
        };
        shared.complete(&item.key, state);
    }
}

fn handle_connection(stream: UnixStream, shared: &Shared) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut out = stream;
    let reply = respond(line.trim_end(), shared);
    let _ = out.write_all(reply.as_bytes());
    let _ = out.flush();
}

fn respond(request: &str, shared: &Shared) -> String {
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r),
        None => (request, ""),
    };
    match verb {
        "PING" => "PONG\n".to_string(),
        "SUBMIT" => submit(rest, shared),
        "WAIT" => wait(rest, shared),
        "STATS" => stats_line(shared),
        "STATUS" => status_text(shared),
        "SHUTDOWN" => {
            shared.shutdown.store(true, Ordering::Relaxed);
            "BYE\n".to_string()
        }
        other => format!("ERR unknown request {other:?}\n"),
    }
}

fn submit(rest: &str, shared: &Shared) -> String {
    let Some((prio_str, spec_line)) = rest.split_once(' ') else {
        return "ERR SUBMIT wants: SUBMIT <priority> <spec>\n".to_string();
    };
    let Ok(priority) = prio_str.parse::<u8>() else {
        return format!("ERR priority {prio_str:?} is not 0-255\n");
    };
    let spec = match JobSpec::parse_line(spec_line) {
        Ok(s) => s,
        Err(e) => return format!("ERR bad spec: {e}\n"),
    };
    let key = spec.cache_key();
    let canonical = spec.canonical_line();
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    // Warm path: serve straight from the content-addressed cache.
    match shared.cache.get(&key) {
        Ok(payload) => {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            let mut reg = shared.registry.lock().expect("registry lock");
            let id = reg.next_id;
            reg.next_id += 1;
            reg.by_id.insert(id, JobState::Done { payload });
            return format!("CACHED {id} {key}\n");
        }
        Err(Miss::Quarantined { reason, moved_to }) => {
            eprintln!(
                "fsmc serve: cache entry for {key} was corrupt ({reason}); \
                 quarantined to {} and recomputing",
                moved_to.display()
            );
        }
        Err(Miss::Absent) => {}
    }
    // The registry lock is held across queue admission: the id must be
    // registered under its key before a dispatcher can possibly pop the
    // item and try to complete it. `JobQueue::push` never blocks, and no
    // other path acquires the queue lock while holding the registry
    // lock, so the ordering is deadlock-free.
    let mut reg = shared.registry.lock().expect("registry lock");
    let id = reg.next_id;
    reg.next_id += 1;
    // Coalesce onto an identical in-flight job: purity means one
    // execution answers everyone.
    if let Some(waiters) = reg.active_keys.get_mut(&key) {
        waiters.push(id);
        reg.by_id.insert(id, JobState::Pending);
        shared.coalesced.fetch_add(1, Ordering::Relaxed);
        return format!("COALESCED {id} {key}\n");
    }
    match shared.queue.push(priority, WorkItem { key: key.clone(), spec_line: canonical }) {
        admit @ (Admit::Queued | Admit::Shed(_)) => {
            reg.by_id.insert(id, JobState::Pending);
            reg.active_keys.insert(key.clone(), vec![id]);
            if let Admit::Shed(victim) = admit {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                let record = FailureRecord {
                    attempts: 0,
                    reason: "shed".to_string(),
                    error: "queue overloaded; lower-priority job shed before running".to_string(),
                };
                let state = JobState::Failed { record: record.encode() };
                for victim_id in reg.active_keys.remove(&victim.key).unwrap_or_default() {
                    reg.by_id.insert(victim_id, state.clone());
                }
                drop(reg);
                shared.done.notify_all();
            }
            format!("QUEUED {id} {key}\n")
        }
        Admit::Busy { retry_after_ms } => format!("BUSY {retry_after_ms}\n"),
    }
}

fn wait(rest: &str, shared: &Shared) -> String {
    let Ok(id) = rest.trim().parse::<u64>() else {
        return format!("ERR job id {rest:?} is not a number\n");
    };
    let mut reg = shared.registry.lock().expect("registry lock");
    loop {
        match reg.by_id.get(&id) {
            None => return format!("ERR unknown job id {id}\n"),
            Some(JobState::Done { payload }) => {
                return format!("DONE {}\n{payload}", payload.len());
            }
            Some(JobState::Failed { record }) => {
                return format!("FAILED {}\n{record}", record.len());
            }
            Some(JobState::Pending) => {
                reg = shared.done.wait(reg).expect("registry lock");
            }
        }
    }
}

fn stats_line(shared: &Shared) -> String {
    format!(
        "submitted={} cache_hits={} coalesced={} simulations={} retries={} poisoned={} shed={} \
         queue={} limit={} workers={} quarantined={}\n",
        shared.submitted.load(Ordering::Relaxed),
        shared.cache_hits.load(Ordering::Relaxed),
        shared.coalesced.load(Ordering::Relaxed),
        shared.pool.counters.simulations.load(Ordering::Relaxed),
        shared.pool.counters.retries.load(Ordering::Relaxed),
        shared.pool.counters.poisoned.load(Ordering::Relaxed),
        shared.shed.load(Ordering::Relaxed),
        shared.queue.len(),
        shared.pool.current_limit(),
        shared.pool.width(),
        shared.cache.quarantined_count(),
    )
}

fn status_text(shared: &Shared) -> String {
    let reg = shared.registry.lock().expect("registry lock");
    let pending = reg.by_id.values().filter(|s| matches!(s, JobState::Pending)).count();
    let done = reg.by_id.values().filter(|s| matches!(s, JobState::Done { .. })).count();
    let failed = reg.by_id.values().filter(|s| matches!(s, JobState::Failed { .. })).count();
    drop(reg);
    format!(
        "fsmc experiment service\n\
         jobs: {pending} pending, {done} done, {failed} failed\n\
         queue depth: {}\n\
         pool: {} of {} workers active (degradation-adjusted)\n\
         {}",
        shared.queue.len(),
        shared.pool.current_limit(),
        shared.pool.width(),
        stats_line(shared),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsmc-serve-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A fake worker that echoes a valid-looking payload for any spec.
    /// Server tests exercise the daemon plumbing, not the simulator —
    /// the real worker binary is covered by the root integration tests.
    fn echo_worker() -> Vec<String> {
        vec!["/bin/sh".into(), "-c".into(), "read line; printf 'payload\\n'".into()]
    }

    fn options(dir: &std::path::Path, worker: Vec<String>) -> ServeOptions {
        ServeOptions {
            socket: dir.join("fsmc.sock"),
            cache_dir: dir.join("cache"),
            workers: 2,
            timeout_ms: 1_000,
            max_attempts: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            queue_capacity: 16,
            worker_cmd: worker,
            chaos: None,
        }
    }

    const SPEC: &str = "cores=2 cycles=1000 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1";

    fn start(opts: ServeOptions) -> (Client, std::thread::JoinHandle<()>) {
        let socket = opts.socket.clone();
        let h = std::thread::spawn(move || serve(opts).expect("daemon runs"));
        let client = Client::new(socket);
        for _ in 0..200 {
            if client.ping() {
                return (client, h);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("daemon never came up");
    }

    #[test]
    fn submit_wait_roundtrip_then_cache_hit() {
        let dir = scratch("roundtrip");
        let (client, h) = start(options(&dir, echo_worker()));
        let spec = JobSpec::parse_line(SPEC).unwrap();
        let first = client.submit(0, &spec).unwrap();
        assert!(!first.cached);
        let payload = client.wait(first.id).unwrap().expect("job succeeds");
        assert_eq!(payload, "payload\n");
        // Second submission of the same spec is a pure cache hit.
        let second = client.submit(0, &spec).unwrap();
        assert!(second.cached);
        assert_eq!(client.wait(second.id).unwrap().expect("cached"), "payload\n");
        let stats = client.stats().unwrap();
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert!(stats.contains("simulations=1"), "{stats}");
        client.shutdown();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashing_worker_poisons_with_structured_record() {
        let dir = scratch("poison");
        let worker = vec!["/bin/sh".into(), "-c".into(), "read line; exit 9".into()];
        let (client, h) = start(options(&dir, worker));
        let spec = JobSpec::parse_line(SPEC).unwrap();
        let sub = client.submit(0, &spec).unwrap();
        let record = client.wait(sub.id).unwrap().expect_err("job poisons");
        assert_eq!(record.attempts, 2);
        assert_eq!(record.reason, "crash");
        let stats = client.stats().unwrap();
        assert!(stats.contains("poisoned=1"), "{stats}");
        assert!(stats.contains("retries=1"), "{stats}");
        client.shutdown();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_is_quarantined_and_recomputed() {
        let dir = scratch("quarantine");
        let (client, h) = start(options(&dir, echo_worker()));
        let spec = JobSpec::parse_line(SPEC).unwrap();
        let sub = client.submit(0, &spec).unwrap();
        client.wait(sub.id).unwrap().expect("first run");
        // Truncate the entry on disk behind the daemon's back.
        let cache = ResultCache::new(dir.join("cache"));
        let entry = cache.entry_path(&spec.cache_key());
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        // The resubmit is NOT served from the corrupt entry.
        let again = client.submit(0, &spec).unwrap();
        assert!(!again.cached, "corrupt entry must not be a cache hit");
        assert_eq!(client.wait(again.id).unwrap().expect("recomputed"), "payload\n");
        let stats = client.stats().unwrap();
        assert!(stats.contains("quarantined=1"), "{stats}");
        assert!(stats.contains("simulations=2"), "{stats}");
        client.shutdown();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_inflight_specs_coalesce() {
        let dir = scratch("coalesce");
        // Slow worker so the second submit lands while the first runs.
        let worker = vec!["/bin/sh".into(), "-c".into(), "read line; sleep 0.3; echo slow".into()];
        let (client, h) = start(options(&dir, worker));
        let spec = JobSpec::parse_line(SPEC).unwrap();
        let a = client.submit(0, &spec).unwrap();
        let b = client.submit(0, &spec).unwrap();
        assert_eq!(client.wait(a.id).unwrap().expect("a"), "slow\n");
        assert_eq!(client.wait(b.id).unwrap().expect("b"), "slow\n");
        let stats = client.stats().unwrap();
        assert!(stats.contains("coalesced=1"), "{stats}");
        assert!(stats.contains("simulations=1"), "{stats}");
        client.shutdown();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_requests_get_typed_errors() {
        let dir = scratch("badreq");
        let (client, h) = start(options(&dir, echo_worker()));
        assert!(client.raw_request("SUBMIT 0 not-a-spec").unwrap().starts_with("ERR bad spec"));
        assert!(client.raw_request("WAIT 9999").unwrap().starts_with("ERR unknown job id"));
        assert!(client.raw_request("FROB").unwrap().starts_with("ERR unknown request"));
        client.shutdown();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
