//! # fsmc-serve — the crash-tolerant experiment service
//!
//! The fixed-service policies make every simulation a *pure function*
//! of its job spec `(mix × scheduler × device × cycles × seed)`:
//! deterministic, bit-reproducible, and therefore safe to cache, retry,
//! and re-run after any crash. This crate exploits that property as a
//! long-running daemon (`fsmc serve`) that large experiment campaigns
//! submit to instead of simulating in-process:
//!
//! * [`queue`] — bounded admission with explicit backpressure: a full
//!   queue answers `BUSY <retry-after>`, and sustained overload sheds
//!   the lowest-priority queued work (with a typed failure record) in
//!   favour of more urgent arrivals.
//! * [`pool`] — a pool of **worker processes** (one simulation per
//!   child, sidestepping the single-process `FSMC_THREADS` ceiling):
//!   per-job deadlines enforced by a watchdog, crash/timeout/typed-error
//!   retries with capped exponential backoff, poisoning after K
//!   attempts, and graceful degradation (the pool narrows when workers
//!   die faster than they finish). Includes the deterministic chaos
//!   harness ([`pool::ChaosSpec`]) used by the robustness CI.
//! * [`cache`] — the crash-safe content-addressed result cache: entries
//!   keyed by the spec's SHA-256, written tmp-file → fsync → rename →
//!   fsync(dir), integrity-checked on read, and quarantined (never
//!   served) when corrupt.
//! * [`fsio`] — the durable atomic write primitive shared by the cache
//!   and the bench layer's `save_result`.
//! * [`server`] — the daemon: Unix-socket protocol, job registry,
//!   coalescing of identical in-flight specs, and dispatcher threads.
//! * [`client`] — the connection-per-request client plus
//!   [`client::run_plan_remote`], the drop-in
//!   [`fsmc_sim::Engine`]-compatible router the bench layer calls when
//!   `FSMC_SERVE` is set.
//!
//! Job specs, cache keys, and the bit-exact result payloads live in
//! [`fsmc_sim::spec`], next to the engine they describe.

pub mod cache;
pub mod client;
pub mod fsio;
pub mod pool;
pub mod queue;
pub mod server;

pub use cache::{Miss, ResultCache};
pub use client::{run_plan_remote, Client, SubmitReply};
pub use fsio::{write_durable, WriteError, WriteStage};
pub use pool::{ChaosSpec, PoolOptions, WorkerPool};
pub use queue::{Admit, JobQueue};
pub use server::{serve, ServeOptions};
