//! Client side of the experiment service, including the drop-in plan
//! router [`run_plan_remote`] the bench layer uses when `FSMC_SERVE` is
//! set.

use fsmc_sim::spec::{FailureRecord, JobSpec, ResultPayload};
use fsmc_sim::{Engine, ExperimentPlan, FsmcError, RunResult, ServiceFailure};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Reply to a successful `SUBMIT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReply {
    pub id: u64,
    pub key: String,
    /// Served straight from the result cache (no simulation will run).
    pub cached: bool,
}

/// A connection-per-request client for the `fsmc serve` daemon.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

impl Client {
    pub fn new(socket: PathBuf) -> Self {
        Client { socket }
    }

    /// Sends one request line and returns the full reply (the daemon
    /// answers and closes; multi-line replies read to EOF).
    pub fn raw_request(&self, request: &str) -> std::io::Result<String> {
        let mut stream = UnixStream::connect(&self.socket)?;
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.shutdown(std::net::Shutdown::Write)?;
        let mut reply = String::new();
        stream.read_to_string(&mut reply)?;
        Ok(reply)
    }

    /// True when a daemon answers on the socket.
    pub fn ping(&self) -> bool {
        matches!(self.raw_request("PING"), Ok(r) if r.trim() == "PONG")
    }

    /// Submits a spec, honouring `BUSY <retry-after>` backpressure by
    /// sleeping and retrying (bounded; a persistently full daemon
    /// surfaces as an error, not an infinite loop).
    ///
    /// # Errors
    ///
    /// A rendered description of a transport failure, a daemon `ERR`, or
    /// exhausted backpressure retries.
    pub fn submit(&self, priority: u8, spec: &JobSpec) -> Result<SubmitReply, String> {
        let request = format!("SUBMIT {priority} {}", spec.canonical_line());
        for _ in 0..600 {
            let reply = self.raw_request(&request).map_err(|e| format!("submit: {e}"))?;
            let mut words = reply.split_whitespace();
            match words.next() {
                Some("CACHED") | Some("QUEUED") | Some("COALESCED") => {
                    let cached = reply.starts_with("CACHED");
                    let id = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| format!("malformed reply {reply:?}"))?;
                    let key = words
                        .next()
                        .ok_or_else(|| format!("malformed reply {reply:?}"))?
                        .to_string();
                    return Ok(SubmitReply { id, key, cached });
                }
                Some("BUSY") => {
                    let ms = words.next().and_then(|w| w.parse().ok()).unwrap_or(50);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => return Err(format!("daemon rejected submit: {}", reply.trim_end())),
            }
        }
        Err("daemon stayed busy through 600 backpressure retries".to_string())
    }

    /// Blocks until job `id` is terminal: `Ok(Ok(payload))` for a
    /// result, `Ok(Err(record))` for a poisoned/shed job.
    ///
    /// # Errors
    ///
    /// A rendered description of a transport or protocol failure.
    pub fn wait(&self, id: u64) -> Result<Result<String, FailureRecord>, String> {
        let reply = self.raw_request(&format!("WAIT {id}")).map_err(|e| format!("wait: {e}"))?;
        let (head, body) =
            reply.split_once('\n').ok_or_else(|| format!("malformed reply {reply:?}"))?;
        match head.split_whitespace().next() {
            Some("DONE") => Ok(Ok(body.to_string())),
            Some("FAILED") => Ok(Err(FailureRecord::decode(body)
                .map_err(|e| format!("malformed failure record: {e}"))?)),
            _ => Err(format!("daemon rejected wait: {head}")),
        }
    }

    /// The daemon's one-line machine-readable counters.
    ///
    /// # Errors
    ///
    /// Transport failures as [`std::io::Error`].
    pub fn stats(&self) -> std::io::Result<String> {
        self.raw_request("STATS")
    }

    /// The daemon's human-readable status page.
    ///
    /// # Errors
    ///
    /// Transport failures as [`std::io::Error`].
    pub fn status(&self) -> std::io::Result<String> {
        self.raw_request("STATUS")
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&self) {
        let _ = self.raw_request("SHUTDOWN");
    }
}

/// Executes a plan through the experiment service, falling back to the
/// in-process [`Engine`] for jobs the service cannot express (injected
/// faults, custom controllers, metrics collection, bespoke configs) or
/// when no daemon answers on `socket`. Slot `i` of the output is job
/// `i`'s outcome either way, byte-identical to [`Engine::run`] on the
/// same plan.
pub fn run_plan_remote(
    socket: &std::path::Path,
    plan: &ExperimentPlan,
) -> Vec<Result<RunResult, FsmcError>> {
    let client = Client::new(socket.to_path_buf());
    if !client.ping() {
        eprintln!(
            "fsmc serve: no daemon on {} (is `fsmc serve` running?); simulating in-process",
            socket.display()
        );
        return Engine::from_env().run(plan);
    }
    // Split servable from local-only jobs, preserving slots.
    let mut slots: Vec<Option<Result<RunResult, FsmcError>>> = Vec::new();
    let mut submitted: Vec<(usize, JobSpec, Result<SubmitReply, String>)> = Vec::new();
    let mut local = ExperimentPlan::new();
    let mut local_slots = Vec::new();
    for (i, job) in plan.jobs().iter().enumerate() {
        slots.push(None);
        match JobSpec::try_from_job(job) {
            Some(spec) => {
                let reply = client.submit(0, &spec);
                submitted.push((i, spec, reply));
            }
            None => {
                local_slots.push(i);
                local.push(job.clone());
            }
        }
    }
    if !local.is_empty() {
        for (slot, result) in local_slots.into_iter().zip(Engine::from_env().run(&local)) {
            slots[slot] = Some(result);
        }
    }
    for (slot, spec, reply) in submitted {
        let job = &plan.jobs()[slot];
        let outcome = resolve(&client, &spec, reply, job);
        slots[slot] = Some(outcome);
    }
    slots.into_iter().map(|s| s.expect("every slot resolved")).collect()
}

/// Turns one submit reply into the job's final result.
fn resolve(
    client: &Client,
    spec: &JobSpec,
    reply: Result<SubmitReply, String>,
    job: &fsmc_sim::ExperimentJob,
) -> Result<RunResult, FsmcError> {
    let service_err = |attempts, reason: &str, error: String| {
        FsmcError::Service(ServiceFailure {
            spec: spec.canonical_line(),
            attempts,
            reason: reason.to_string(),
            error,
        })
    };
    let submit = reply.map_err(|e| service_err(0, "transport", e))?;
    match client.wait(submit.id).map_err(|e| service_err(0, "transport", e))? {
        Ok(payload) => {
            let decoded = ResultPayload::decode(&payload)
                .map_err(|e| service_err(1, "decode", format!("bad result payload: {e}")))?;
            decoded
                .into_run_result(job)
                .map_err(|e| service_err(1, "decode", format!("payload mismatch: {e}")))
        }
        Err(record) => Err(FsmcError::Service(ServiceFailure {
            spec: spec.canonical_line(),
            attempts: record.attempts,
            reason: record.reason,
            error: record.error,
        })),
    }
}
