//! Durable, atomic file writes.
//!
//! Every artifact the service persists — cache entries, result CSVs —
//! goes through [`write_durable`]: the bytes land in a temporary file in
//! the destination directory, the file is fsynced, renamed over the
//! destination, and the *parent directory* is fsynced too, so the entry
//! either exists completely or not at all, even across power loss.
//! Failures are typed [`WriteError`]s naming the stage that failed — an
//! unwritable results directory is an error the caller must handle, not
//! a warning scrolled past.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Which step of the durable-write protocol failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStage {
    /// Creating the destination's parent directory.
    CreateDir,
    /// Creating or writing the temporary file.
    Write,
    /// Fsyncing the temporary file.
    SyncFile,
    /// Renaming the temporary file over the destination.
    Rename,
    /// Opening or fsyncing the parent directory.
    SyncDir,
}

impl WriteStage {
    fn what(self) -> &'static str {
        match self {
            WriteStage::CreateDir => "create parent directory for",
            WriteStage::Write => "write temporary file for",
            WriteStage::SyncFile => "fsync temporary file for",
            WriteStage::Rename => "rename temporary file over",
            WriteStage::SyncDir => "fsync parent directory of",
        }
    }
}

/// A failed durable write: the destination, the protocol stage that
/// failed, and the OS error.
#[derive(Debug)]
pub struct WriteError {
    pub path: PathBuf,
    pub stage: WriteStage,
    pub source: std::io::Error,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "could not {} {}: {}", self.stage.what(), self.path.display(), self.source)
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Writes `bytes` to `path` durably and atomically: tmp file in the same
/// directory → fsync(file) → rename → fsync(parent dir). The parent
/// directory is created if missing. Concurrent writers of the same path
/// are safe: each uses a distinct temporary name and rename is atomic.
///
/// # Errors
///
/// A [`WriteError`] naming the failed stage; on failure the destination
/// is untouched (a leftover `.tmp.*` file is removed best-effort).
pub fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), WriteError> {
    let err = |stage, source| WriteError { path: path.to_path_buf(), stage, source };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&parent).map_err(|e| err(WriteStage::CreateDir, e))?;
    let file_name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = parent.join(format!(".{}.tmp.{}", file_name, std::process::id()));
    let write_tmp = |tmp: &Path| -> Result<(), WriteError> {
        let mut f = fs::File::create(tmp).map_err(|e| err(WriteStage::Write, e))?;
        f.write_all(bytes).map_err(|e| err(WriteStage::Write, e))?;
        f.sync_all().map_err(|e| err(WriteStage::SyncFile, e))?;
        Ok(())
    };
    if let Err(e) = write_tmp(&tmp) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(err(WriteStage::Rename, e));
    }
    // Make the rename itself durable: fsync the directory entry.
    fs::File::open(&parent).and_then(|d| d.sync_all()).map_err(|e| err(WriteStage::SyncDir, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsmc-fsio-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_create_parents_and_leave_no_temp_files() {
        let dir = scratch("basic");
        let path = dir.join("a/b/out.txt");
        write_durable(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        let entries: Vec<_> =
            fs::read_dir(path.parent().unwrap()).unwrap().map(|e| e.unwrap().file_name()).collect();
        assert_eq!(entries.len(), 1, "no temp files left behind: {entries:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrites_are_atomic_replacements() {
        let dir = scratch("overwrite");
        let path = dir.join("out.txt");
        write_durable(&path, b"first").unwrap();
        write_durable(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_destination_is_a_typed_error() {
        // The destination's parent is a *file*, so the directory cannot
        // be created — the unwritable-results-dir case.
        let dir = scratch("unwritable");
        fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        fs::write(&blocker, b"x").unwrap();
        let e = write_durable(&blocker.join("out.txt"), b"data").unwrap_err();
        assert_eq!(e.stage, WriteStage::CreateDir);
        let msg = e.to_string();
        assert!(msg.contains("create parent directory"), "{msg}");
        assert!(msg.contains("out.txt"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }
}
