//! # fsmc-obs — observability subsystem
//!
//! Structured tracing and per-domain metrics for the FS memory-controller
//! simulator. The crate is deliberately a dependency-free leaf: events
//! carry plain integers (rank/bank/domain as `u8`, rows as `u32`, cycles
//! as `u64`) so every layer of the workspace — `fsmc-dram`, `fsmc-core`,
//! `fsmc-sim` — can feed it without a dependency cycle. The simulation
//! layer owns the conversion from its native command/transaction types.
//!
//! ## Overhead contract
//!
//! Observability is `Option`-gated at every hook site: a `System` holds
//! `Option<TraceSink>` / `Option<MetricsCollector>`, the DRAM device an
//! `Option<Vec<..>>` side log. When disabled (the default) the hooks
//! reduce to a `None` check — no allocation, no event construction — and
//! simulation results are bit-identical with the hooks compiled in
//! (`tests/determinism.rs` proves this end to end).
//!
//! ## Determinism contract
//!
//! All metrics are *event-based*, never wall-clock- or poll-based:
//! latencies are recorded when a transaction retires, row locality is
//! classified from the drained command stream, queue occupancy is
//! sampled at each arrival. The fast-path (`skip_ahead`/`batch_ticks`)
//! and per-cycle simulation paths therefore produce identical reports,
//! and because each engine slot computes its own report single-threaded,
//! output is byte-identical at any `FSMC_THREADS`.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod sink;

pub use chrome::{ChromeTraceBuilder, LaneLayout, LanePartition};
pub use event::{CmdClass, SlotKind, TraceEvent};
pub use metrics::{DomainLatency, LatencyHistogram, MetricsCollector, MetricsReport};
pub use sink::TraceSink;
