//! The trace event model.
//!
//! Events are plain-integer records so producers in any workspace layer
//! can emit them without depending on simulator types. One simulated
//! DRAM cycle is the unit of time throughout.

/// DRAM cycle, mirroring `fsmc_dram::Cycle` without the dependency.
pub type Cycle = u64;

/// Command classes, mirroring the DRAM command set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdClass {
    Activate,
    Read,
    ReadAp,
    Write,
    WriteAp,
    Precharge,
    PrechargeAll,
    Refresh,
    PowerDownEnter,
    PowerDownExit,
}

impl CmdClass {
    /// Short mnemonic used in exported trace names.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmdClass::Activate => "ACT",
            CmdClass::Read => "RD",
            CmdClass::ReadAp => "RDA",
            CmdClass::Write => "WR",
            CmdClass::WriteAp => "WRA",
            CmdClass::Precharge => "PRE",
            CmdClass::PrechargeAll => "PREA",
            CmdClass::Refresh => "REF",
            CmdClass::PowerDownEnter => "PDE",
            CmdClass::PowerDownExit => "PDX",
        }
    }

    /// True for column accesses (read or write, with or without AP).
    pub fn is_cas(self) -> bool {
        matches!(self, CmdClass::Read | CmdClass::ReadAp | CmdClass::Write | CmdClass::WriteAp)
    }

    /// True if this CAS closes the row when the burst finishes.
    pub fn has_auto_precharge(self) -> bool {
        matches!(self, CmdClass::ReadAp | CmdClass::WriteAp)
    }
}

/// What an FS scheduler granted a slot to (or why it stayed empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// A queued demand transaction.
    Demand,
    /// A sandbox prefetch filling an otherwise-dead slot.
    Prefetch,
    /// A dummy access (traffic shaping).
    Dummy,
    /// A power-down pair replacing the dummy (energy optimisation 3).
    PowerDown,
    /// Nothing issued: the slot cadence left a bubble.
    Bubble,
}

impl SlotKind {
    pub fn label(self) -> &'static str {
        match self {
            SlotKind::Demand => "demand",
            SlotKind::Prefetch => "prefetch",
            SlotKind::Dummy => "dummy",
            SlotKind::PowerDown => "power-down",
            SlotKind::Bubble => "bubble",
        }
    }
}

/// One observability event. `domain` fields are security-domain indices;
/// `None` where the producer cannot attribute one (e.g. refresh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A DRAM command hit the command bus (or was suppressed on it).
    Command {
        cycle: Cycle,
        class: CmdClass,
        rank: u8,
        bank: u8,
        row: u32,
        /// Energy optimisation 1: a dummy CAS whose bus toggling is
        /// suppressed. It still occupies its slot.
        suppressed: bool,
        /// For CAS commands: the cycle the data burst completes.
        data_done: Option<Cycle>,
    },
    /// A demand transaction arrived at the controller.
    TxnArrival { cycle: Cycle, domain: u8, is_write: bool, queue_depth: u32 },
    /// A demand read retired (data delivered back to the core side).
    TxnRetire { arrival: Cycle, finish: Cycle, domain: u8 },
    /// An FS slot decision: who owned the slot and what filled it.
    SlotGrant { cycle: Cycle, slot: u64, domain: u8, kind: SlotKind },
    /// A refresh command was issued to `rank`.
    Refresh { cycle: Cycle, rank: u8 },
    /// The controller degraded onto the conservative pipeline.
    Degraded { cycle: Cycle },
    /// The controller adopted a re-solved, re-certified schedule at a
    /// drained epoch boundary (persistent fault or domain churn).
    Reconfigured { cycle: Cycle, epoch: u64 },
    /// The simulation fast path skipped or batch-ticked a span.
    FastPath { from: Cycle, to: Cycle, batched: bool },
}

impl TraceEvent {
    /// The cycle the event is anchored at (span events use their start).
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Command { cycle, .. }
            | TraceEvent::TxnArrival { cycle, .. }
            | TraceEvent::SlotGrant { cycle, .. }
            | TraceEvent::Refresh { cycle, .. }
            | TraceEvent::Degraded { cycle }
            | TraceEvent::Reconfigured { cycle, .. } => cycle,
            TraceEvent::TxnRetire { arrival, .. } => arrival,
            TraceEvent::FastPath { from, .. } => from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct() {
        let all = [
            CmdClass::Activate,
            CmdClass::Read,
            CmdClass::ReadAp,
            CmdClass::Write,
            CmdClass::WriteAp,
            CmdClass::Precharge,
            CmdClass::PrechargeAll,
            CmdClass::Refresh,
            CmdClass::PowerDownEnter,
            CmdClass::PowerDownExit,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            assert!(seen.insert(c.mnemonic()), "duplicate mnemonic {}", c.mnemonic());
        }
        assert!(CmdClass::ReadAp.is_cas() && CmdClass::ReadAp.has_auto_precharge());
        assert!(CmdClass::Read.is_cas() && !CmdClass::Read.has_auto_precharge());
        assert!(!CmdClass::Activate.is_cas());
    }

    #[test]
    fn anchor_cycles() {
        assert_eq!(TraceEvent::Degraded { cycle: 7 }.cycle(), 7);
        assert_eq!(TraceEvent::Reconfigured { cycle: 12, epoch: 2 }.cycle(), 12);
        assert_eq!(TraceEvent::TxnRetire { arrival: 3, finish: 9, domain: 0 }.cycle(), 3);
        assert_eq!(TraceEvent::FastPath { from: 10, to: 20, batched: false }.cycle(), 10);
    }
}
