//! Chrome trace-event JSON export.
//!
//! Produces the classic `{"traceEvents": [...]}` format accepted by
//! `chrome://tracing` and Perfetto. One simulated DRAM cycle maps to one
//! microsecond of trace time (the format's `ts`/`dur` unit), so slot
//! pitch and interval cadence read directly off the timeline ruler.
//!
//! Lane layout:
//! - process "channel" — one thread lane per (rank, bank), plus one
//!   control lane per rank (refresh / power-down). Command slices are
//!   colored by the security domain that owns the lane under the
//!   scheduler's partition policy; unpartitioned schedulers render grey.
//! - process "domains" — one lane per security domain carrying demand
//!   read lifetimes (arrival → data return). This is the per-domain
//!   latency picture, present for every scheduler.
//! - process "scheduler" — FS slot grants per domain (demand / prefetch
//!   / dummy / power-down / bubble) and degradation markers.
//! - process "simulator" — fast-path skip and batch spans, so elided
//!   time is explicit rather than invisible.

use crate::event::{SlotKind, TraceEvent};

/// How the scheduler pins banks/ranks to security domains — decides the
/// color of command lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePartition {
    /// Domain `d` owns rank `d % ranks` (FS rank partitioning).
    Rank,
    /// Domain `d` owns banks `b` with `b % domains == d` (bank striping).
    BankStriped,
    /// No spatial ownership (baselines, TP schedulers).
    None,
}

/// Geometry + partition info the exporter needs to lay out lanes.
#[derive(Debug, Clone, Copy)]
pub struct LaneLayout {
    pub domains: u8,
    pub ranks: u8,
    pub banks_per_rank: u8,
    pub partition: LanePartition,
}

impl LaneLayout {
    /// The domain that owns a (rank, bank) lane, if the partition policy
    /// pins one.
    pub fn domain_of(&self, rank: u8, bank: u8) -> Option<u8> {
        let domains = self.domains.max(1);
        match self.partition {
            LanePartition::Rank => Some(rank % domains),
            LanePartition::BankStriped => Some(bank % domains),
            LanePartition::None => None,
        }
    }
}

/// Chrome tracing palette names, one per domain (wrapping after 8).
const DOMAIN_COLORS: [&str; 8] = [
    "thread_state_running",
    "rail_response",
    "rail_animation",
    "thread_state_iowait",
    "rail_load",
    "yellow",
    "olive",
    "terrible",
];

fn domain_color(d: u8) -> &'static str {
    DOMAIN_COLORS[d as usize % DOMAIN_COLORS.len()]
}

/// Escapes a string for embedding in a JSON string literal. Names here
/// are controlled ASCII; this keeps the exporter safe anyway.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const PID_CHANNEL: u32 = 1;
const PID_DOMAINS: u32 = 2;
const PID_SCHED: u32 = 3;
const PID_SIM: u32 = 4;

/// Streams [`TraceEvent`]s into Chrome trace-event JSON.
#[derive(Debug, Clone)]
pub struct ChromeTraceBuilder {
    layout: LaneLayout,
    title: String,
}

impl ChromeTraceBuilder {
    pub fn new(layout: LaneLayout, title: &str) -> Self {
        ChromeTraceBuilder { layout, title: title.to_string() }
    }

    fn bank_tid(&self, rank: u8, bank: u8) -> u32 {
        rank as u32 * self.layout.banks_per_rank as u32 + bank as u32 + 1
    }

    fn rank_ctrl_tid(&self, rank: u8) -> u32 {
        self.layout.ranks as u32 * self.layout.banks_per_rank as u32 + rank as u32 + 1
    }

    fn meta(out: &mut Vec<String>, kind: &str, pid: u32, tid: Option<u32>, name: &str) {
        let tid_part = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
        out.push(format!(
            "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},{tid_part}\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn complete(
        out: &mut Vec<String>,
        name: &str,
        lane: (u32, u32),
        ts: u64,
        dur: u64,
        cname: Option<&str>,
        args: &str,
    ) {
        let (pid, tid) = lane;
        let cname_part = cname.map(|c| format!("\"cname\":\"{c}\",")).unwrap_or_default();
        let args_obj = if args.is_empty() { "{}" } else { args };
        out.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"fsmc\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\
             \"pid\":{pid},\"tid\":{tid},{cname_part}\"args\":{args_obj}}}",
            esc(name),
            dur.max(1)
        ));
    }

    /// Lane-naming metadata for every process/thread the layout defines.
    fn emit_metadata(&self, out: &mut Vec<String>) {
        Self::meta(out, "process_name", PID_CHANNEL, None, &format!("channel — {}", self.title));
        Self::meta(out, "process_name", PID_DOMAINS, None, "domains (demand read lifetimes)");
        Self::meta(out, "process_name", PID_SCHED, None, "scheduler (slot grants)");
        Self::meta(out, "process_name", PID_SIM, None, "simulator (fast path)");
        for pid in [PID_CHANNEL, PID_DOMAINS, PID_SCHED, PID_SIM] {
            out.push(format!(
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"sort_index\":{pid}}}}}"
            ));
        }
        for r in 0..self.layout.ranks {
            for b in 0..self.layout.banks_per_rank {
                let owner = match self.layout.domain_of(r, b) {
                    Some(d) => format!(" [dom {d}]"),
                    None => String::new(),
                };
                Self::meta(
                    out,
                    "thread_name",
                    PID_CHANNEL,
                    Some(self.bank_tid(r, b)),
                    &format!("rank {r} bank {b}{owner}"),
                );
            }
            Self::meta(
                out,
                "thread_name",
                PID_CHANNEL,
                Some(self.rank_ctrl_tid(r)),
                &format!("rank {r} ctrl"),
            );
        }
        for d in 0..self.layout.domains.max(1) {
            Self::meta(out, "thread_name", PID_DOMAINS, Some(d as u32 + 1), &format!("domain {d}"));
            Self::meta(
                out,
                "thread_name",
                PID_SCHED,
                Some(d as u32 + 1),
                &format!("slots dom {d}"),
            );
        }
        Self::meta(out, "thread_name", PID_SIM, Some(1), "time skips");
    }

    fn emit_event(&self, out: &mut Vec<String>, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Command { cycle, class, rank, bank, row, suppressed, data_done } => {
                let bank_level = class.is_cas()
                    || class == crate::CmdClass::Activate
                    || class == crate::CmdClass::Precharge;
                let (tid, is_rank_level) = if bank_level {
                    (self.bank_tid(rank, bank), false)
                } else {
                    (self.rank_ctrl_tid(rank), true)
                };
                let dur = data_done.map(|d| d.saturating_sub(cycle)).unwrap_or(1);
                let cname = if suppressed {
                    Some("grey")
                } else if is_rank_level {
                    Some("light_memory_dump")
                } else {
                    self.layout.domain_of(rank, bank).map(domain_color)
                };
                let name = if suppressed {
                    format!("{} (suppressed)", class.mnemonic())
                } else {
                    class.mnemonic().to_string()
                };
                let args = format!("{{\"row\":{row}}}");
                Self::complete(out, &name, (PID_CHANNEL, tid), cycle, dur, cname, &args);
            }
            TraceEvent::TxnRetire { arrival, finish, domain } => {
                Self::complete(
                    out,
                    "read",
                    (PID_DOMAINS, domain as u32 + 1),
                    arrival,
                    finish.saturating_sub(arrival),
                    Some(domain_color(domain)),
                    "",
                );
            }
            TraceEvent::SlotGrant { cycle, slot, domain, kind } => {
                let cname = match kind {
                    SlotKind::Bubble => Some("grey"),
                    SlotKind::Dummy | SlotKind::PowerDown => Some("generic_work"),
                    _ => Some(domain_color(domain)),
                };
                let args = format!("{{\"slot\":{slot}}}");
                Self::complete(
                    out,
                    kind.label(),
                    (PID_SCHED, domain as u32 + 1),
                    cycle,
                    1,
                    cname,
                    &args,
                );
            }
            TraceEvent::Refresh { cycle, rank } => {
                Self::complete(
                    out,
                    "REF",
                    (PID_CHANNEL, self.rank_ctrl_tid(rank)),
                    cycle,
                    1,
                    Some("light_memory_dump"),
                    "",
                );
            }
            TraceEvent::Degraded { cycle } => {
                out.push(format!(
                    "{{\"name\":\"degraded\",\"cat\":\"fsmc\",\"ph\":\"i\",\"ts\":{cycle},\
                     \"pid\":{PID_SCHED},\"tid\":1,\"s\":\"p\"}}"
                ));
            }
            TraceEvent::Reconfigured { cycle, epoch } => {
                out.push(format!(
                    "{{\"name\":\"reconfigured (epoch {epoch})\",\"cat\":\"fsmc\",\"ph\":\"i\",\
                     \"ts\":{cycle},\"pid\":{PID_SCHED},\"tid\":1,\"s\":\"p\"}}"
                ));
            }
            TraceEvent::FastPath { from, to, batched } => {
                let name = if batched { "batch" } else { "skip" };
                Self::complete(
                    out,
                    name,
                    (PID_SIM, 1),
                    from,
                    to.saturating_sub(from),
                    Some(if batched { "rail_idle" } else { "cq_build_passed" }),
                    "",
                );
            }
            // Arrival instants would double the event count for little
            // visual value; the domain lane's slice start carries it.
            TraceEvent::TxnArrival { .. } => {}
        }
    }

    /// Renders the full trace JSON.
    pub fn export(&self, events: &[TraceEvent]) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(events.len() + 64);
        self.emit_metadata(&mut parts);
        for ev in events {
            self.emit_event(&mut parts, ev);
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"unit\":\"1 ts = 1 DRAM cycle\"}},\
             \"traceEvents\":[\n{}\n]}}\n",
            parts.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CmdClass;

    fn layout() -> LaneLayout {
        LaneLayout { domains: 2, ranks: 2, banks_per_rank: 8, partition: LanePartition::Rank }
    }

    /// A minimal structural JSON check (no serde in the workspace):
    /// balanced braces/brackets outside strings and no dangling commas.
    fn check_json_shape(s: &str) {
        let (mut depth, mut in_str, mut esc_next) = (0i64, false, false);
        let mut last_sig = ' ';
        for c in s.chars() {
            if in_str {
                if esc_next {
                    esc_next = false;
                } else if c == '\\' {
                    esc_next = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(last_sig, ',', "dangling comma before {c}");
                    depth -= 1;
                }
                _ => {}
            }
            if !c.is_whitespace() {
                last_sig = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced braces");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn export_is_structurally_valid_json() {
        let events = vec![
            TraceEvent::Command {
                cycle: 10,
                class: CmdClass::Activate,
                rank: 0,
                bank: 3,
                row: 42,
                suppressed: false,
                data_done: None,
            },
            TraceEvent::Command {
                cycle: 14,
                class: CmdClass::ReadAp,
                rank: 0,
                bank: 3,
                row: 42,
                suppressed: false,
                data_done: Some(36),
            },
            TraceEvent::Command {
                cycle: 20,
                class: CmdClass::WriteAp,
                rank: 1,
                bank: 0,
                row: 7,
                suppressed: true,
                data_done: Some(44),
            },
            TraceEvent::Refresh { cycle: 50, rank: 1 },
            TraceEvent::TxnRetire { arrival: 5, finish: 36, domain: 0 },
            TraceEvent::SlotGrant { cycle: 10, slot: 3, domain: 0, kind: SlotKind::Demand },
            TraceEvent::SlotGrant { cycle: 18, slot: 4, domain: 1, kind: SlotKind::Bubble },
            TraceEvent::Degraded { cycle: 60 },
            TraceEvent::FastPath { from: 70, to: 170, batched: false },
            TraceEvent::TxnArrival { cycle: 5, domain: 0, is_write: false, queue_depth: 1 },
        ];
        let json = ChromeTraceBuilder::new(layout(), "test").export(&events);
        check_json_shape(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("rank 0 bank 3 [dom 0]"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("RDA"));
        assert!(json.contains("WRA (suppressed)"));
        assert!(json.contains("\"cname\":\"grey\""));
        assert!(json.contains("\"name\":\"skip\""));
        // CAS duration covers the burst: 36 - 14.
        assert!(json.contains("\"ts\":14,\"dur\":22"));
    }

    #[test]
    fn unpartitioned_lanes_have_no_domain_tag() {
        let l = LaneLayout { partition: LanePartition::None, ..layout() };
        assert_eq!(l.domain_of(0, 0), None);
        let json = ChromeTraceBuilder::new(l, "baseline").export(&[]);
        check_json_shape(&json);
        assert!(!json.contains("[dom"));
        // Bank-striped: bank index selects the domain.
        let l = LaneLayout { partition: LanePartition::BankStriped, ..layout() };
        assert_eq!(l.domain_of(1, 3), Some(1));
        assert_eq!(l.domain_of(0, 4), Some(0));
    }
}
