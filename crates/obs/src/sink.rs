//! The event recorder.

use crate::event::TraceEvent;

/// An append-only buffer of [`TraceEvent`]s.
///
/// Producers hold an `Option<TraceSink>`; when tracing is disabled the
/// option is `None` and the hook site is a branch, nothing more. Events
/// are recorded in drain order, which the simulation layer keeps
/// deterministic (commands in issue order, simulator events interleaved
/// at their step boundaries).
#[derive(Debug, Default, Clone)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// With room for `cap` events up front (long traced runs).
    pub fn with_capacity(cap: usize) -> Self {
        TraceSink { events: Vec::with_capacity(cap) }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    pub fn extend(&mut self, evs: impl IntoIterator<Item = TraceEvent>) {
        self.events.extend(evs);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CmdClass, TraceEvent};

    #[test]
    fn records_in_order() {
        let mut sink = TraceSink::with_capacity(4);
        assert!(sink.is_empty());
        sink.push(TraceEvent::TxnArrival { cycle: 1, domain: 0, is_write: false, queue_depth: 1 });
        sink.push(TraceEvent::Command {
            cycle: 5,
            class: CmdClass::Activate,
            rank: 0,
            bank: 3,
            row: 17,
            suppressed: false,
            data_done: None,
        });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].cycle(), 1);
        assert_eq!(sink.into_events().len(), 2);
    }
}
