//! Per-domain metrics: log-bucketed latency histograms, row-locality
//! counters, queue-occupancy sampling.
//!
//! Everything here is integer-based and event-driven, so a report is a
//! pure function of the (deterministic) event stream: byte-identical
//! across `FSMC_THREADS`, and across the fast-path and per-cycle
//! simulation paths.

use crate::event::{CmdClass, TraceEvent};

/// Number of log2 buckets. Bucket `i` (for `i < 63`) holds latencies in
/// `[2^(i-1), 2^i)`; bucket 0 holds exactly 0; bucket 63 absorbs the
/// tail.
const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram with exact count/sum/max.
///
/// Percentiles are reported as the upper bound of the bucket containing
/// the requested rank (clamped to the observed maximum) — coarse, but
/// integer-exact and therefore deterministic to the byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    pub fn record(&mut self, latency: u64) {
        self.buckets[bucket_index(latency)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(latency);
        self.max = self.max.max(latency);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at percentile `p` (0..=100): the upper bound of the
    /// bucket containing the `ceil(count*p/100)`-th smallest sample,
    /// clamped to the observed maximum. 0 when empty.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * p).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The raw per-bucket counts (log2 buckets, see [`LatencyHistogram`]).
    /// Joint-histogram consumers — e.g. the online leakage estimator in
    /// `fsmc-leak` — build per-symbol-class histograms and compute mutual
    /// information over these counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram into this one (engine-slot aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Fixed summary quantiles for reports.
    pub fn summary(&self) -> DomainLatency {
        DomainLatency {
            count: self.count,
            sum: self.sum,
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
            max: self.max,
        }
    }
}

/// Summary quantiles of one domain's read-latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainLatency {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Per-bank row-buffer tracking state for locality classification.
#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    open_row: Option<u32>,
    /// A CAS already touched the open row (the next CAS is a hit).
    cas_since_act: bool,
    /// An explicit precharge closed a row since the last access — the
    /// next access paid a conflict (PRE + ACT), not just a miss.
    pre_since_access: bool,
}

/// Consumes [`TraceEvent`]s and accumulates per-domain metrics.
///
/// Row locality is classified from the command stream alone: a CAS to a
/// row already used since its ACT is a *hit*; the first CAS after an ACT
/// is a *conflict* if an explicit precharge closed the bank since its
/// last access (the FR-FCFS close-on-conflict pattern), otherwise a
/// *miss*. Auto-precharge closes the row as part of the access itself
/// and does not mark a conflict — FS pipelines therefore read as
/// all-miss by construction, which is exactly their shape.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    latency: Vec<LatencyHistogram>,
    banks: Vec<BankTrack>,
    banks_per_rank: u8,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
    queue_sum: u64,
    queue_samples: u64,
    reads: u64,
    writes: u64,
}

impl MetricsCollector {
    pub fn new(domains: u8, ranks: u8, banks_per_rank: u8) -> Self {
        MetricsCollector {
            latency: vec![LatencyHistogram::default(); domains.max(1) as usize],
            banks: vec![BankTrack::default(); ranks as usize * banks_per_rank as usize],
            banks_per_rank,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            queue_sum: 0,
            queue_samples: 0,
            reads: 0,
            writes: 0,
        }
    }

    pub fn on_event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Command { class, rank, bank, row, .. } => {
                self.on_command(class, rank, bank, row)
            }
            TraceEvent::TxnArrival { is_write, queue_depth, .. } => {
                self.queue_sum += queue_depth as u64;
                self.queue_samples += 1;
                if is_write {
                    self.writes += 1;
                } else {
                    self.reads += 1;
                }
            }
            TraceEvent::TxnRetire { arrival, finish, domain } => {
                if let Some(h) = self.latency.get_mut(domain as usize) {
                    h.record(finish.saturating_sub(arrival));
                }
            }
            // Refresh requires all banks precharged and leaves them
            // closed; mirror that on the tracking state.
            TraceEvent::Refresh { rank, .. } => self.on_command(CmdClass::Refresh, rank, 0, 0),
            _ => {}
        }
    }

    fn on_command(&mut self, class: CmdClass, rank: u8, bank: u8, row: u32) {
        let close_all = |banks: &mut [BankTrack], rank: u8, per: u8| {
            let base = rank as usize * per as usize;
            for t in banks.iter_mut().skip(base).take(per as usize) {
                t.open_row = None;
                t.cas_since_act = false;
            }
        };
        let idx = rank as usize * self.banks_per_rank as usize + bank as usize;
        match class {
            CmdClass::Activate => {
                if let Some(t) = self.banks.get_mut(idx) {
                    t.open_row = Some(row);
                    t.cas_since_act = false;
                }
            }
            c if c.is_cas() => {
                let Some(t) = self.banks.get_mut(idx) else { return };
                if t.cas_since_act {
                    self.row_hits += 1;
                } else {
                    if t.pre_since_access {
                        self.row_conflicts += 1;
                    } else {
                        self.row_misses += 1;
                    }
                    t.cas_since_act = true;
                    t.pre_since_access = false;
                }
                if c.has_auto_precharge() {
                    t.open_row = None;
                    t.cas_since_act = false;
                }
            }
            CmdClass::Precharge => {
                if let Some(t) = self.banks.get_mut(idx) {
                    if t.open_row.take().is_some() {
                        t.pre_since_access = true;
                    }
                    t.cas_since_act = false;
                }
            }
            CmdClass::PrechargeAll | CmdClass::Refresh => {
                close_all(&mut self.banks, rank, self.banks_per_rank);
            }
            _ => {}
        }
    }

    /// Freezes the collector into a report. `bus_utilization` comes from
    /// the device counters at end of run (itself event-derived).
    pub fn finish(&self, bus_utilization: f64) -> MetricsReport {
        MetricsReport {
            domains: self.latency.iter().map(|h| h.summary()).collect(),
            row_hits: self.row_hits,
            row_misses: self.row_misses,
            row_conflicts: self.row_conflicts,
            queue_sum: self.queue_sum,
            queue_samples: self.queue_samples,
            reads: self.reads,
            writes: self.writes,
            bus_utilization,
        }
    }
}

/// A frozen metrics report for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Read-latency summary per security domain.
    pub domains: Vec<DomainLatency>,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    pub queue_sum: u64,
    pub queue_samples: u64,
    pub reads: u64,
    pub writes: u64,
    pub bus_utilization: f64,
}

impl MetricsReport {
    /// Mean outstanding-transaction count sampled at arrivals, in
    /// thousandths (integer, for byte-stable rendering).
    pub fn mean_queue_depth_milli(&self) -> u64 {
        (self.queue_sum * 1000).checked_div(self.queue_samples).unwrap_or(0)
    }

    /// Multi-line human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "row locality: {} hits, {} misses, {} conflicts\n",
            self.row_hits, self.row_misses, self.row_conflicts
        ));
        let q = self.mean_queue_depth_milli();
        out.push_str(&format!(
            "arrivals: {} reads, {} writes; mean queue depth {}.{:03}\n",
            self.reads,
            self.writes,
            q / 1000,
            q % 1000
        ));
        out.push_str(&format!("data-bus utilization: {:.4}\n", self.bus_utilization));
        out.push_str(&format!(
            "{:<8} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
            "domain", "reads", "p50", "p95", "p99", "max"
        ));
        for (d, s) in self.domains.iter().enumerate() {
            out.push_str(&format!(
                "{d:<8} {:>10} {:>8} {:>8} {:>8} {:>8}\n",
                s.count, s.p50, s.p95, s.p99, s.max
            ));
        }
        out
    }

    /// Header cells appended to CSV outputs under `--metrics`.
    pub fn csv_header(domains: usize) -> String {
        let mut out = String::from("row_hits,row_misses,row_conflicts,queue_milli");
        for d in 0..domains {
            out.push_str(&format!(",d{d}_reads,d{d}_p50,d{d}_p95,d{d}_p99,d{d}_max"));
        }
        out
    }

    /// Value cells matching [`MetricsReport::csv_header`].
    pub fn csv_cells(&self) -> String {
        let mut out = format!(
            "{},{},{},{}",
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
            self.mean_queue_depth_milli()
        );
        for s in &self.domains {
            out.push_str(&format!(",{},{},{},{},{}", s.count, s.p50, s.p95, s.p99, s.max));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_bucket_bounds() {
        let mut h = LatencyHistogram::default();
        for v in [3u64, 5, 9, 17, 33, 100, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 100);
        // p50 rank = 4th smallest (17) → bucket [16,32) upper bound 31.
        assert_eq!(h.percentile(50), 31);
        // p99 rank = 8th → bucket [64,128) upper bound 127, clamped to max.
        assert_eq!(h.percentile(99), 100);
        assert_eq!(h.percentile(100), 100);
    }

    #[test]
    fn histogram_edge_values() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile(50), 0);
        h.record(0);
        assert_eq!(h.percentile(50), 0);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100), u64::MAX);
        // The sum saturates instead of wrapping.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let (mut a, mut b, mut both) =
            (LatencyHistogram::default(), LatencyHistogram::default(), LatencyHistogram::default());
        for v in [1u64, 4, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 8, 300] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn row_locality_classification() {
        let mut m = MetricsCollector::new(2, 2, 8);
        let cmd = |class, rank, bank, row| TraceEvent::Command {
            cycle: 0,
            class,
            rank,
            bank,
            row,
            suppressed: false,
            data_done: None,
        };
        // FR-FCFS shape: ACT, CAS (miss), CAS same row (hit), explicit
        // PRE + ACT other row, CAS (conflict).
        m.on_event(&cmd(CmdClass::Activate, 0, 0, 10));
        m.on_event(&cmd(CmdClass::Read, 0, 0, 10));
        m.on_event(&cmd(CmdClass::Read, 0, 0, 10));
        m.on_event(&cmd(CmdClass::Precharge, 0, 0, 0));
        m.on_event(&cmd(CmdClass::Activate, 0, 0, 11));
        m.on_event(&cmd(CmdClass::Read, 0, 0, 11));
        // FS shape on another bank: ACT + CASap twice — two misses, no
        // conflicts (auto-precharge is part of the access).
        m.on_event(&cmd(CmdClass::Activate, 1, 3, 7));
        m.on_event(&cmd(CmdClass::ReadAp, 1, 3, 7));
        m.on_event(&cmd(CmdClass::Activate, 1, 3, 8));
        m.on_event(&cmd(CmdClass::WriteAp, 1, 3, 8));
        let r = m.finish(0.5);
        assert_eq!((r.row_hits, r.row_misses, r.row_conflicts), (1, 3, 1));
    }

    #[test]
    fn latency_and_queue_sampling_roll_up() {
        let mut m = MetricsCollector::new(2, 1, 8);
        m.on_event(&TraceEvent::TxnArrival {
            cycle: 0,
            domain: 0,
            is_write: false,
            queue_depth: 1,
        });
        m.on_event(&TraceEvent::TxnArrival { cycle: 1, domain: 1, is_write: true, queue_depth: 2 });
        m.on_event(&TraceEvent::TxnRetire { arrival: 0, finish: 40, domain: 0 });
        m.on_event(&TraceEvent::TxnRetire { arrival: 0, finish: 44, domain: 0 });
        m.on_event(&TraceEvent::TxnRetire { arrival: 1, finish: 100, domain: 1 });
        let r = m.finish(0.25);
        assert_eq!(r.domains[0].count, 2);
        assert_eq!(r.domains[0].max, 44);
        assert_eq!(r.domains[1].count, 1);
        assert_eq!((r.reads, r.writes), (1, 1));
        assert_eq!(r.mean_queue_depth_milli(), 1500);
        let text = r.render();
        assert!(text.contains("mean queue depth 1.500"), "{text}");
        let cells = r.csv_cells();
        assert_eq!(cells.split(',').count(), MetricsReport::csv_header(2).split(',').count());
    }
}
