//! Microbenchmarks for the pipeline constraint solver and schedule
//! materialisation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmc_core::solver::{
    build_constraints, solve, solve_best, Anchor, PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc_dram::TimingParams;

fn bench_solver(c: &mut Criterion) {
    let t = TimingParams::ddr3_1600();
    c.bench_function("solve/rank/data", |b| {
        b.iter(|| solve(black_box(&t), Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap())
    });
    c.bench_function("solve/none/ras", |b| {
        b.iter(|| solve(black_box(&t), Anchor::FixedPeriodicRas, PartitionLevel::None).unwrap())
    });
    c.bench_function("solve_best/all-levels", |b| {
        b.iter(|| {
            for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
                solve_best(black_box(&t), level).unwrap();
            }
        })
    });
    c.bench_function("build_constraints/none", |b| {
        b.iter(|| build_constraints(black_box(&t), Anchor::FixedPeriodicRas, 1, 1))
    });
    let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
    let sched = SlotSchedule::uniform(sol, 8);
    c.bench_function("schedule/plan", |b| {
        let mut g = 0u64;
        b.iter(|| {
            g += 1;
            black_box(sched.plan(g))
        })
    });
    let rbp = ReorderedBpSchedule::new(&t, 8);
    c.bench_function("schedule/reordered_slot_times", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(rbp.slot_times(k, (k % 8) as u8, k.is_multiple_of(2)))
        })
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
