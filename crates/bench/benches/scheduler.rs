//! Macrobenchmarks: simulated DRAM cycles per second for each policy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::BenchProfile;

fn bench_policies(c: &mut Criterion) {
    for kind in [
        K::Baseline,
        K::FsRankPartitioned,
        K::FsTripleAlternation,
        K::TpBankPartitioned { turn: 60 },
    ] {
        c.bench_function(&format!("simulate_5k_cycles/{kind}"), |b| {
            b.iter(|| {
                let cfg = SystemConfig::paper_default(kind);
                let mut sys = System::homogeneous(&cfg, BenchProfile::milc(), 7);
                black_box(sys.run_cycles(5_000))
            })
        });
    }
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
