//! Microbenchmarks for the DRAM device model and the timing checker.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmc_dram::command::TimedCommand;
use fsmc_dram::geometry::{BankId, ColId, RankId, RowId};
use fsmc_dram::{Command, DramDevice, Geometry, TimingChecker, TimingParams};

/// A steady stream of row-miss reads round-robining the ranks.
fn read_stream(n: usize) -> Vec<TimedCommand> {
    let mut dev = DramDevice::new(Geometry::paper_default(), TimingParams::ddr3_1600());
    dev.record_commands();
    let mut cycle = 0;
    for i in 0..n as u64 {
        let rank = RankId((i % 8) as u8);
        let bank = BankId(((i / 8) % 8) as u8);
        let act = Command::activate(rank, bank, RowId((i % 1024) as u32));
        cycle = dev.earliest_issue(&act, cycle, 2000).expect("stream fits");
        dev.issue(&act, cycle).unwrap();
        let rd = Command::read_ap(rank, bank, RowId((i % 1024) as u32), ColId(0));
        let c = dev.earliest_issue(&rd, cycle, 2000).expect("stream fits");
        dev.issue(&rd, c).unwrap();
    }
    dev.take_log()
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("device/issue_1k_reads", |b| b.iter(|| black_box(read_stream(500))));
    let log = read_stream(500);
    let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
    c.bench_function("checker/replay_1k_commands", |b| {
        b.iter(|| {
            let v = checker.check(black_box(&log));
            assert!(v.is_empty());
        })
    });
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
