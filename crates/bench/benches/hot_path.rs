//! Hot-path benchmarks: event-driven fast path vs forced per-cycle
//! stepping for the throughput scenarios tracked in
//! `results/bench_throughput.json` (see `fsmc bench-throughput`).
//!
//! Each scenario runs twice — once with the fast path armed and once
//! with [`System::disable_fastpath`] — so a Criterion report shows the
//! time-skipping speedup directly. `next_event` is also benchmarked in
//! isolation: it is the fast path's marginal cost (the per-cycle path
//! never calls it).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_dram::geometry::{BankId, ColId, RankId, RowId};
use fsmc_dram::{Command, DramDevice, Geometry, TimingParams};
use fsmc_sim::{Engine, ExperimentJob, ExperimentPlan, System, SystemConfig};
use fsmc_workload::{BenchProfile, WorkloadMix};

const CYCLES: u64 = 5_000;

fn scenarios() -> Vec<(&'static str, K, WorkloadMix)> {
    vec![
        ("fs-np-idle-heavy", K::FsNoPartitionNaive, WorkloadMix::rate(BenchProfile::mcf(), 8)),
        ("fs-rp-mix1", K::FsRankPartitioned, WorkloadMix::mix1_for(8)),
        ("baseline-memory-intensive", K::Baseline, WorkloadMix::rate(BenchProfile::mcf(), 8)),
        ("tp-bp-mix2", K::TpBankPartitioned { turn: 60 }, WorkloadMix::mix2_for(8)),
    ]
}

fn bench_fast_vs_percycle(c: &mut Criterion) {
    for (name, kind, mix) in scenarios() {
        for fast in [true, false] {
            let path = if fast { "fastpath" } else { "per-cycle" };
            let mix = mix.clone();
            c.bench_function(&format!("hot_path/{name}/{path}"), |b| {
                b.iter(|| {
                    let cfg = SystemConfig::with_cores(kind, mix.cores() as u8);
                    let mut sys = System::from_mix(&cfg, &mix, 42);
                    if !fast {
                        sys.disable_fastpath();
                    }
                    black_box(sys.run_cycles(CYCLES))
                })
            });
        }
    }
}

fn bench_next_event(c: &mut Criterion) {
    for (name, kind, mix) in scenarios() {
        let cfg = SystemConfig::with_cores(kind, mix.cores() as u8);
        let mut sys = System::from_mix(&cfg, &mix, 42);
        // Warm the controller into a loaded steady state, then probe the
        // scan cost against that queue occupancy.
        sys.run_cycles(CYCLES);
        let now = sys.dram_cycle();
        c.bench_function(&format!("next_event/{name}"), |b| {
            b.iter(|| black_box(sys.controller().next_event(black_box(now))))
        });
    }
}

/// A device warmed into a loaded steady state — open rows on every
/// rank and in-flight read bursts — so the SoA probes below scan
/// realistic ready-cycle tables rather than the all-zero reset state.
fn warmed_device() -> (DramDevice, u64) {
    let mut dev = DramDevice::new(Geometry::paper_default(), TimingParams::ddr3_1600());
    let mut cycle = 0;
    // Each (rank, bank) pair is activated exactly once — a second ACT
    // on an open bank would be illegal for good.
    for i in 0..32u64 {
        let rank = RankId((i % 8) as u8);
        let bank = BankId((i / 8) as u8);
        let row = RowId((i % 512) as u32);
        let act = Command::activate(rank, bank, row);
        cycle = dev.earliest_issue(&act, cycle, 50_000).expect("warmup fits");
        dev.issue(&act, cycle).unwrap();
        let rd = Command::read(rank, bank, row, ColId(0));
        let at = dev.earliest_issue(&rd, cycle, 50_000).expect("warmup fits");
        dev.issue(&rd, at).unwrap();
    }
    (dev, cycle)
}

/// The two SoA hot paths in isolation: the flat-table event-bound scan
/// (the fast path's marginal cost per elided span) and a CAS apply
/// (the dominant mutation on saturated runs — rank/bank ready-cycle
/// stores plus the data-bus window push).
fn bench_soa_device(c: &mut Criterion) {
    let (dev, now) = warmed_device();
    let bpr = dev.geometry().banks_per_rank() as u32;
    // Masks mirror what the baseline scheduler builds: CAS and PRE bits
    // on every open bank, ACT bits on the closed ones.
    let (mut cas, mut pre, mut act) = (0u128, 0u128, 0u128);
    for r in 0..dev.geometry().ranks_per_channel() {
        for b in 0..dev.geometry().banks_per_rank() {
            let bit = 1u128 << (r as u32 * bpr + b as u32);
            if dev.open_row(RankId(r), BankId(b)).is_some() {
                cas |= bit;
                pre |= bit;
            } else {
                act |= bit;
            }
        }
    }
    c.bench_function("soa/next_event_bound", |b| {
        b.iter(|| black_box(dev.next_event_bound(black_box(now), cas, cas, pre, act)))
    });
    let target = RankId(1);
    let row = dev.open_row(target, BankId(0)).expect("warmup opened rank 1 bank 0");
    let cmd = Command::read(target, BankId(0), row, ColId(0));
    let at = dev.earliest_issue(&cmd, now, 500_000).expect("CAS issues");
    // `issue` mutates, so each sample replays onto a fresh copy; the
    // clone of the flat SoA tables is part of the measured cost (and a
    // useful canary against the state ever growing pointer-chasing
    // members again).
    c.bench_function("soa/cas_apply", |b| {
        b.iter(|| {
            let mut d = dev.clone();
            black_box(d.issue(&cmd, at).unwrap())
        })
    });
}

/// Eight same-tape jobs run back to back versus interleaved as one
/// K=8 batch on a single worker: identical simulation work, so the
/// report shows the cost (or win) of the batching machinery itself.
fn bench_batched_replay(c: &mut Criterion) {
    let mut plan = ExperimentPlan::new();
    for _ in 0..8 {
        plan.push(ExperimentJob::new(WorkloadMix::mix1(), K::FsRankPartitioned, CYCLES, 42));
    }
    for (label, engine) in
        [("k1", Engine::with_threads(1)), ("k8", Engine::with_threads(1).with_batch(8))]
    {
        c.bench_function(&format!("batched_replay/{label}"), |b| {
            b.iter(|| black_box(engine.run(&plan)))
        });
    }
}

criterion_group!(
    benches,
    bench_fast_vs_percycle,
    bench_next_event,
    bench_soa_device,
    bench_batched_replay
);
criterion_main!(benches);
