//! Hot-path benchmarks: event-driven fast path vs forced per-cycle
//! stepping for the throughput scenarios tracked in
//! `results/bench_throughput.json` (see `fsmc bench-throughput`).
//!
//! Each scenario runs twice — once with the fast path armed and once
//! with [`System::disable_fastpath`] — so a Criterion report shows the
//! time-skipping speedup directly. `next_event` is also benchmarked in
//! isolation: it is the fast path's marginal cost (the per-cycle path
//! never calls it).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::{BenchProfile, WorkloadMix};

const CYCLES: u64 = 5_000;

fn scenarios() -> Vec<(&'static str, K, WorkloadMix)> {
    vec![
        ("fs-np-idle-heavy", K::FsNoPartitionNaive, WorkloadMix::rate(BenchProfile::mcf(), 8)),
        ("fs-rp-mix1", K::FsRankPartitioned, WorkloadMix::mix1_for(8)),
        ("baseline-memory-intensive", K::Baseline, WorkloadMix::rate(BenchProfile::mcf(), 8)),
        ("tp-bp-mix2", K::TpBankPartitioned { turn: 60 }, WorkloadMix::mix2_for(8)),
    ]
}

fn bench_fast_vs_percycle(c: &mut Criterion) {
    for (name, kind, mix) in scenarios() {
        for fast in [true, false] {
            let path = if fast { "fastpath" } else { "per-cycle" };
            let mix = mix.clone();
            c.bench_function(&format!("hot_path/{name}/{path}"), |b| {
                b.iter(|| {
                    let cfg = SystemConfig::with_cores(kind, mix.cores() as u8);
                    let mut sys = System::from_mix(&cfg, &mix, 42);
                    if !fast {
                        sys.disable_fastpath();
                    }
                    black_box(sys.run_cycles(CYCLES))
                })
            });
        }
    }
}

fn bench_next_event(c: &mut Criterion) {
    for (name, kind, mix) in scenarios() {
        let cfg = SystemConfig::with_cores(kind, mix.cores() as u8);
        let mut sys = System::from_mix(&cfg, &mix, 42);
        // Warm the controller into a loaded steady state, then probe the
        // scan cost against that queue occupancy.
        sys.run_cycles(CYCLES);
        let now = sys.dram_cycle();
        c.bench_function(&format!("next_event/{name}"), |b| {
            b.iter(|| black_box(sys.controller().next_event(black_box(now))))
        });
    }
}

criterion_group!(benches, bench_fast_vs_percycle, bench_next_event);
criterion_main!(benches);
