//! Throughput-benchmark snapshots: the `results/bench_throughput.json`
//! format, parsed strictly with typed errors.
//!
//! `fsmc bench-throughput` writes one scenario object per line so the
//! regression gate (and human diffs) can scan the snapshot without a
//! JSON parser. This module owns both directions of that contract:
//! [`ThroughputSnapshot::to_json`] renders it and
//! [`ThroughputSnapshot::parse`] validates it line by line, so a
//! malformed or truncated snapshot surfaces as a [`SnapshotError`]
//! naming the offending line instead of a panic or a silently skipped
//! scenario.

use std::fmt;
use std::path::Path;

/// Everything that can go wrong loading or checking a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot file could not be read.
    Io { path: String, detail: String },
    /// The file ended before the closing `]` / `}` — a truncated write.
    Truncated { expected: &'static str },
    /// A line that should carry a field or scenario does not parse.
    Malformed { line: usize, detail: String },
    /// A structurally valid snapshot with zero scenarios.
    Empty,
    /// The snapshot names a scenario the fresh run did not measure.
    MissingScenario { name: String },
    /// A scenario's fresh throughput fell below the tolerance band.
    Regression { name: String, baseline_cps: f64, measured_cps: f64 },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, detail } => write!(f, "cannot read {path}: {detail}"),
            SnapshotError::Truncated { expected } => {
                write!(f, "snapshot truncated: file ended before {expected}")
            }
            SnapshotError::Malformed { line, detail } => {
                write!(f, "snapshot line {line}: {detail}")
            }
            SnapshotError::Empty => write!(f, "snapshot contains no scenarios"),
            SnapshotError::MissingScenario { name } => {
                write!(f, "snapshot scenario {name:?} not measured by this run")
            }
            SnapshotError::Regression { name, baseline_cps, measured_cps } => write!(
                f,
                "{name}: fast-path throughput regressed {baseline_cps:.0} -> \
                 {measured_cps:.0} cycles/sec (beyond tolerance)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One recorded scenario: identity plus both throughput measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotScenario {
    pub name: String,
    pub scheduler: String,
    pub workload: String,
    pub per_cycle_cps: f64,
    pub fastpath_cps: f64,
    pub speedup: f64,
}

/// A parsed `bench_throughput.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSnapshot {
    pub cycles: u64,
    pub seed: u64,
    pub scenarios: Vec<SnapshotScenario>,
}

/// Extracts `"key": value` from a one-line scenario object.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn field_req<'a>(line: &'a str, n: usize, key: &str) -> Result<&'a str, SnapshotError> {
    field(line, key)
        .ok_or_else(|| SnapshotError::Malformed { line: n, detail: format!("missing {key:?}") })
}

fn num_req<T: std::str::FromStr>(line: &str, n: usize, key: &str) -> Result<T, SnapshotError> {
    let raw = field_req(line, n, key)?;
    raw.parse().map_err(|_| SnapshotError::Malformed {
        line: n,
        detail: format!("{key:?} is not a number: {raw:?}"),
    })
}

impl ThroughputSnapshot {
    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on read failure, otherwise as [`Self::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Parses the one-scenario-per-line snapshot format strictly: the
    /// header fields, every scenario line, and the closing brackets all
    /// have to be present and well formed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] names the first bad line;
    /// [`SnapshotError::Truncated`] fires when the file ends early;
    /// [`SnapshotError::Empty`] when no scenario was recorded.
    pub fn parse(text: &str) -> Result<Self, SnapshotError> {
        // 1-based line numbers for every diagnostic.
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let mut next =
            |expected: &'static str| lines.next().ok_or(SnapshotError::Truncated { expected });

        let (n, l) = next("opening '{'")?;
        if l != "{" {
            return Err(SnapshotError::Malformed {
                line: n,
                detail: format!("expected {{, got {l:?}"),
            });
        }
        let (n, l) = next("\"cycles\" field")?;
        let cycles: u64 = num_req(l, n, "cycles")?;
        let (n, l) = next("\"seed\" field")?;
        let seed: u64 = num_req(l, n, "seed")?;
        let (n, l) = next("\"scenarios\" array")?;
        if !l.starts_with("\"scenarios\":") {
            return Err(SnapshotError::Malformed {
                line: n,
                detail: format!("expected \"scenarios\": [, got {l:?}"),
            });
        }
        let mut scenarios = Vec::new();
        loop {
            let (n, l) = next("closing ']' of scenarios")?;
            if l == "]" {
                break;
            }
            if !l.starts_with('{') {
                return Err(SnapshotError::Malformed {
                    line: n,
                    detail: format!("expected a scenario object, got {l:?}"),
                });
            }
            scenarios.push(SnapshotScenario {
                name: field_req(l, n, "name")?.to_string(),
                scheduler: field_req(l, n, "scheduler")?.to_string(),
                workload: field_req(l, n, "workload")?.to_string(),
                per_cycle_cps: num_req(l, n, "per_cycle_cps")?,
                fastpath_cps: num_req(l, n, "fastpath_cps")?,
                speedup: num_req(l, n, "speedup")?,
            });
        }
        let (n, l) = next("closing '}'")?;
        if l != "}" {
            return Err(SnapshotError::Malformed {
                line: n,
                detail: format!("expected }}, got {l:?}"),
            });
        }
        if scenarios.is_empty() {
            return Err(SnapshotError::Empty);
        }
        Ok(ThroughputSnapshot { cycles, seed, scenarios })
    }

    /// Renders the snapshot in the committed one-scenario-per-line
    /// format; `parse` round-trips it.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"cycles\": {},\n  \"seed\": {},\n", self.cycles, self.seed));
        json.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"workload\": \"{}\", \
                 \"per_cycle_cps\": {:.0}, \"fastpath_cps\": {:.0}, \"speedup\": {:.2}}}{}\n",
                s.name,
                s.scheduler,
                s.workload,
                s.per_cycle_cps,
                s.fastpath_cps,
                s.speedup,
                if i + 1 == self.scenarios.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// The regression gate: every recorded scenario must have been
    /// measured afresh at no less than `1 - tolerance` of its recorded
    /// fast-path throughput. `measured` is `(name, fastpath_cps)` pairs.
    /// Returns the number of scenarios checked.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingScenario`] or [`SnapshotError::Regression`].
    pub fn check(&self, measured: &[(&str, f64)], tolerance: f64) -> Result<usize, SnapshotError> {
        for s in &self.scenarios {
            let Some((_, cps)) = measured.iter().find(|(name, _)| *name == s.name) else {
                return Err(SnapshotError::MissingScenario { name: s.name.clone() });
            };
            if *cps < (1.0 - tolerance) * s.fastpath_cps {
                return Err(SnapshotError::Regression {
                    name: s.name.clone(),
                    baseline_cps: s.fastpath_cps,
                    measured_cps: *cps,
                });
            }
        }
        Ok(self.scenarios.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThroughputSnapshot {
        ThroughputSnapshot {
            cycles: 500_000,
            seed: 42,
            scenarios: vec![
                SnapshotScenario {
                    name: "fs-rp-mix1".into(),
                    scheduler: "fs-rp".into(),
                    workload: "mix1".into(),
                    per_cycle_cps: 200_000.0,
                    fastpath_cps: 450_000.0,
                    speedup: 2.25,
                },
                SnapshotScenario {
                    name: "baseline-memory-intensive".into(),
                    scheduler: "baseline".into(),
                    workload: "mcf".into(),
                    per_cycle_cps: 300_000.0,
                    fastpath_cps: 450_000.0,
                    speedup: 1.50,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let parsed = ThroughputSnapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn truncated_snapshot_is_a_typed_error_not_a_panic() {
        let json = sample().to_json();
        // Cutting the file at any line boundary must yield Truncated or
        // Malformed — never a panic, never an Ok.
        let lines: Vec<&str> = json.lines().collect();
        for keep in 0..lines.len() {
            let cut = lines[..keep].join("\n");
            let err = ThroughputSnapshot::parse(&cut).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. } | SnapshotError::Malformed { .. }),
                "cut after {keep} lines: {err}"
            );
        }
    }

    #[test]
    fn malformed_values_name_the_line() {
        let json = sample().to_json().replace("\"per_cycle_cps\": 200000", "\"per_cycle_cps\": x");
        match ThroughputSnapshot::parse(&json).unwrap_err() {
            SnapshotError::Malformed { line, detail } => {
                assert_eq!(line, 5, "{detail}");
                assert!(detail.contains("per_cycle_cps"), "{detail}");
            }
            other => panic!("expected Malformed, got {other}"),
        }
        // A scenario line missing a required key is also malformed.
        let json = sample().to_json().replace("\"workload\": \"mix1\", ", "");
        assert!(matches!(
            ThroughputSnapshot::parse(&json),
            Err(SnapshotError::Malformed { line: 5, .. })
        ));
    }

    #[test]
    fn empty_scenarios_are_rejected() {
        let json = "{\n  \"cycles\": 1,\n  \"seed\": 2,\n  \"scenarios\": [\n  ]\n}\n";
        assert_eq!(ThroughputSnapshot::parse(json), Err(SnapshotError::Empty));
    }

    #[test]
    fn check_flags_regressions_and_missing_scenarios() {
        let snap = sample();
        let ok = [("fs-rp-mix1", 400_000.0), ("baseline-memory-intensive", 460_000.0)];
        assert_eq!(snap.check(&ok, 0.20), Ok(2));
        // 300k < 0.8 * 450k: a regression, attributed to its scenario.
        let slow = [("fs-rp-mix1", 300_000.0), ("baseline-memory-intensive", 460_000.0)];
        assert!(matches!(
            snap.check(&slow, 0.20),
            Err(SnapshotError::Regression { ref name, .. }) if name == "fs-rp-mix1"
        ));
        let missing = [("fs-rp-mix1", 400_000.0)];
        assert!(matches!(
            snap.check(&missing, 0.20),
            Err(SnapshotError::MissingScenario { ref name, .. })
                if name == "baseline-memory-intensive"
        ));
    }

    #[test]
    fn load_reports_io_errors_typed() {
        match ThroughputSnapshot::load("/nonexistent/bench_throughput.json") {
            Err(SnapshotError::Io { path, .. }) => assert!(path.contains("nonexistent")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    /// The committed snapshot format (as written by `fsmc
    /// bench-throughput`) parses, scenario for scenario.
    #[test]
    fn committed_format_parses() {
        let json = "{\n  \"cycles\": 500000,\n  \"seed\": 42,\n  \"scenarios\": [\n    \
            {\"name\": \"fs-np-idle-heavy\", \"scheduler\": \"fs-np\", \"workload\": \"mcf\", \
            \"per_cycle_cps\": 1465870, \"fastpath_cps\": 35544041, \"speedup\": 24.25}\n  ]\n}\n";
        let snap = ThroughputSnapshot::parse(json).unwrap();
        assert_eq!(snap.scenarios.len(), 1);
        assert_eq!(snap.scenarios[0].name, "fs-np-idle-heavy");
        assert_eq!(snap.scenarios[0].fastpath_cps, 35_544_041.0);
    }
}
