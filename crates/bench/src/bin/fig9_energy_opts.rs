//! Figure 9: the three FS energy optimisations — suppressed dummies,
//! row-buffer-hit boosting, and rank power-down — applied cumulatively to
//! rank-partitioned FS.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::fs::EnergyOptions;
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::WorkloadMix;

fn main() {
    let cycles = run_cycles();
    let sd = seed();
    let configs: [(&str, EnergyOptions); 4] = [
        ("FS_RP", EnergyOptions::default()),
        ("Suppressed_Dummy", EnergyOptions { suppress_dummies: true, ..Default::default() }),
        (
            "Row-buffer-opt",
            EnergyOptions { suppress_dummies: true, row_hit_boost: true, ..Default::default() },
        ),
        ("Power-Down", EnergyOptions::all()),
    ];
    println!("Figure 9: memory energy for rank-partitioned FS with the energy optimisations");
    println!("(normalised to plain FS_RP, averaged over the 12-workload suite)\n");
    let suite = WorkloadMix::suite(8);
    let mut sums = [0.0f64; 4];
    for mix in &suite {
        let mut plain = None;
        for (i, (_, opts)) in configs.iter().enumerate() {
            let mut cfg = SystemConfig::paper_default(K::FsRankPartitioned);
            cfg.energy_options = *opts;
            let mut sys = System::from_mix(&cfg, mix, sd);
            let stats = sys.run_cycles(cycles);
            let e = stats.energy.total_nj();
            if i == 0 {
                plain = Some(e);
            }
            sums[i] += e / plain.expect("plain first");
        }
    }
    println!("{:<20} {:>12} {:>10}", "configuration", "measured", "paper");
    let paper = ["1.00", "<1.00", "<<1.00", "~0.475 cumulative"];
    for (i, (name, _)) in configs.iter().enumerate() {
        println!("{:<20} {:>12.3} {:>10}", name, sums[i] / suite.len() as f64, paper[i]);
    }
    println!("\nPaper: the three optimisations collectively cut FS memory energy by 52.5%,");
    println!("landing within 3.4% of the non-secure baseline.");
}
