//! Figure 9: the three FS energy optimisations — suppressed dummies,
//! row-buffer-hit boosting, and rank power-down — applied cumulatively to
//! rank-partitioned FS. The 4-config × 12-workload grid runs as one
//! engine plan; a failed run drops out of the average with a diagnostic.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::fs::EnergyOptions;
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{Engine, ExperimentJob, ExperimentPlan, SystemConfig};
use fsmc_workload::WorkloadMix;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cycles = run_cycles();
    let sd = seed();
    let configs: [(&str, EnergyOptions); 4] = [
        ("FS_RP", EnergyOptions::default()),
        ("Suppressed_Dummy", EnergyOptions { suppress_dummies: true, ..Default::default() }),
        (
            "Row-buffer-opt",
            EnergyOptions { suppress_dummies: true, row_hit_boost: true, ..Default::default() },
        ),
        ("Power-Down", EnergyOptions::all()),
    ];
    println!("Figure 9: memory energy for rank-partitioned FS with the energy optimisations");
    println!("(normalised to plain FS_RP, averaged over the 12-workload suite)\n");
    let suite = WorkloadMix::suite(8);
    let mut plan = ExperimentPlan::new();
    for mix in &suite {
        for (_, opts) in &configs {
            let mut cfg = SystemConfig::paper_default(K::FsRankPartitioned);
            cfg.energy_options = *opts;
            plan.push(
                ExperimentJob::new(mix.clone(), K::FsRankPartitioned, cycles, sd).with_config(cfg),
            );
        }
    }
    let results = Engine::from_env().run(&plan);
    let mut sums = [0.0f64; 4];
    let mut counts = [0usize; 4];
    let mut any_ok = false;
    for (mix, chunk) in suite.iter().zip(results.chunks(configs.len())) {
        let plain = match &chunk[0] {
            Ok(r) => {
                any_ok = true;
                r.stats.energy.total_nj()
            }
            Err(e) => {
                println!("  diagnostic: {}/FS_RP: {e} — row skipped", mix.name);
                continue;
            }
        };
        for (i, run) in chunk.iter().enumerate() {
            match run {
                Ok(r) => {
                    any_ok = true;
                    sums[i] += r.stats.energy.total_nj() / plain;
                    counts[i] += 1;
                }
                Err(e) => println!("  diagnostic: {}/{}: {e}", mix.name, configs[i].0),
            }
        }
    }
    println!("{:<20} {:>12} {:>10}", "configuration", "measured", "paper");
    let paper = ["1.00", "<1.00", "<<1.00", "~0.475 cumulative"];
    for (i, (name, _)) in configs.iter().enumerate() {
        let mean = if counts[i] > 0 { sums[i] / counts[i] as f64 } else { f64::NAN };
        println!("{:<20} {:>12.3} {:>10}", name, mean, paper[i]);
    }
    println!("\nPaper: the three optimisations collectively cut FS memory energy by 52.5%,");
    println!("landing within 3.4% of the non-secure baseline.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
