//! The covert-channel experiment behind Section 2.2's motivation: a
//! sender modulates memory intensity, a receiver decodes its own read
//! latencies. Real-hardware attacks reach 100+ Kbps; FS collapses the
//! channel. The four scheduler trials run concurrently on the engine.

use fsmc_core::sched::SchedulerKind as K;
use fsmc_security::run_covert_channel;
use fsmc_sim::Engine;

fn main() {
    let bits = vec![true, false, true, true, false, false, true, false];
    println!("Covert channel: sender modulates its memory intensity with a secret;");
    println!("receiver decodes from its own latencies (window = 2500 DRAM cycles)\n");
    println!("{:<28} {:>8} {:>12} {:>14}", "scheduler", "BER", "MI (bits)", "capacity");
    let kinds = [
        K::Baseline,
        K::TpBankPartitioned { turn: 60 },
        K::FsRankPartitioned,
        K::FsTripleAlternation,
    ];
    let results = Engine::from_env().map(&kinds, |_, &kind| {
        run_covert_channel(kind, &bits, 2500, 100).expect("well-posed estimate")
    });
    for (kind, r) in kinds.iter().zip(&results) {
        println!(
            "{:<28} {:>8.3} {:>12.3} {:>11.0} bps",
            kind.label(),
            r.ber,
            r.mutual_information_bits,
            r.capacity_bps
        );
    }
    println!("\nPaper context: Wu et al. demonstrate ~100 bps cross-core channels on EC2;");
    println!("Hunger et al. reach >100 Kbps with synchronised endpoints. FS reduces the");
    println!("mutual information to ~0: the receiver's latencies are co-runner-independent.");
}
