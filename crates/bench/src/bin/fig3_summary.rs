//! Figure 3: summary of the design points — normalised throughput of
//! every secure policy against the non-secure baseline. Runs on the
//! experiment engine (`FSMC_THREADS` workers, deterministic output).

use fsmc_bench::{run_cycles, seed, weighted_ipc_suite};
use fsmc_core::sched::SchedulerKind as K;
use std::process::ExitCode;

fn main() -> ExitCode {
    let kinds = [
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
        K::FsTripleAlternation,
        K::TpNoPartition { turn: 172 },
    ];
    let table = weighted_ipc_suite(&kinds, run_cycles(), seed());
    fsmc_bench::save_result_or_warn("fig3_summary.csv", &table.to_csv());
    let means = table.arithmetic_means();
    println!("Figure 3: design-point summary (throughput normalised to baseline = 1.0)\n");
    println!("{:<28} {:>10} {:>10}", "design point", "measured", "paper");
    println!("{:<28} {:>10.3} {:>10}", "Non-secure baseline", 1.0, "1.00");
    for (k, m) in kinds.iter().zip(&means) {
        let paper = match k {
            K::FsRankPartitioned => "0.74",
            K::FsReorderedBankPartitioned => "0.48",
            K::TpBankPartitioned { .. } => "0.43",
            K::FsTripleAlternation => "0.40",
            K::TpNoPartition { .. } => "0.20",
            _ => "-",
        };
        println!("{:<28} {:>10.3} {:>10}", k.label(), m / 8.0, paper);
    }
    println!(
        "\nPer-workload weighted-IPC sums (baseline = 8):\n{}",
        table.render("sum of weighted IPCs")
    );
    table.exit_code()
}
