//! Figure 8: memory energy of the FS and TP schemes, normalised to the
//! non-secure baseline.

use fsmc_bench::{run_cycles, seed, suite_results, SuiteTable};
use fsmc_core::sched::SchedulerKind as K;

fn main() {
    let kinds = [
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
        K::FsTripleAlternation,
        K::TpNoPartition { turn: 172 },
    ];
    let rows = suite_results(&kinds, run_cycles(), seed());
    // Energy for the *same work*: normalise per completed demand access so
    // slower policies pay for their longer execution (background energy)
    // and extra traffic (dummies), as in the paper's equal-work runs.
    let table = SuiteTable {
        columns: kinds.to_vec(),
        rows: rows
            .iter()
            .map(|(name, base, runs)| {
                let per_access = |r: &fsmc_sim::runner::RunResult| {
                    let work = r.stats.reads_completed.max(1) as f64;
                    r.stats.energy.total_nj() / work
                };
                let b = per_access(base);
                (*name, runs.iter().map(|r| per_access(r) / b).collect::<Vec<f64>>())
            })
            .collect(),
    };
    println!("Figure 8: memory energy normalised to the non-secure baseline (per access)\n");
    print!("{}", table.render("normalised memory energy"));
    let m = table.arithmetic_means();
    println!("\nPaper findings: FS beats TP on energy (lower execution time outweighs");
    println!(
        "the ~37% extra dummy accesses). Measured FS_RP/TP_BP energy ratio: {:.2}",
        m[0] / m[2]
    );
}
