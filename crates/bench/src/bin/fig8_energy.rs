//! Figure 8: memory energy of the FS and TP schemes, normalised to the
//! non-secure baseline. Runs on the experiment engine; a failed slot
//! becomes a diagnostic cell instead of killing the figure.

use fsmc_bench::{run_cycles, seed, suite_exit_code, suite_results, Cell, SuiteTable};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::runner::RunResult;
use std::process::ExitCode;

fn main() -> ExitCode {
    let kinds = [
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
        K::FsTripleAlternation,
        K::TpNoPartition { turn: 172 },
    ];
    let rows = suite_results(&kinds, run_cycles(), seed());
    // Energy for the *same work*: normalise per completed demand access so
    // slower policies pay for their longer execution (background energy)
    // and extra traffic (dummies), as in the paper's equal-work runs.
    let per_access = |r: &RunResult| {
        let work = r.stats.reads_completed.max(1) as f64;
        r.stats.energy.total_nj() / work
    };
    let table = SuiteTable {
        columns: kinds.to_vec(),
        rows: rows
            .iter()
            .map(|suite| {
                let cells = suite
                    .runs
                    .iter()
                    .map(|(_, run)| match (&suite.baseline, run) {
                        (Ok(base), Ok(r)) => Cell::Value(per_access(r) / per_access(base)),
                        (Err(e), _) => Cell::Failed(format!("baseline failed: {e}")),
                        (Ok(_), Err(e)) => Cell::Failed(e.to_string()),
                    })
                    .collect();
                (suite.mix_name, cells)
            })
            .collect(),
    };
    fsmc_bench::save_result_or_warn("fig8_energy.csv", &table.to_csv());
    println!("Figure 8: memory energy normalised to the non-secure baseline (per access)\n");
    print!("{}", table.render("normalised memory energy"));
    let m = table.arithmetic_means();
    println!("\nPaper findings: FS beats TP on energy (lower execution time outweighs");
    println!(
        "the ~37% extra dummy accesses). Measured FS_RP/TP_BP energy ratio: {:.2}",
        m[0] / m[2]
    );
    suite_exit_code(&rows)
}
