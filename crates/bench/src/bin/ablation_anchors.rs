//! Ablation: the Section 3.1 "fixed periodic commands" design choice.
//! Anchoring the *data* transfer gives l = 7 under rank partitioning;
//! anchoring the Activate (RAS) or the column command (CAS) gives
//! l = 12. This binary runs all three through the same FS scheduler to
//! quantify the end-to-end cost of the wrong anchor. The 12 baseline
//! runs are shared across anchors (the old serial version re-ran them
//! per anchor); each FS job installs its anchor's hand-solved pipeline
//! through a controller factory.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_core::solver::{solve, Anchor, PartitionLevel};
use fsmc_dram::TimingParams;
use fsmc_sim::{ControllerFactory, Engine, ExperimentJob, ExperimentPlan};
use fsmc_workload::WorkloadMix;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let cycles = run_cycles();
    let sd = seed();
    let t = TimingParams::ddr3_1600();
    let suite = WorkloadMix::suite(8);
    println!("Anchor ablation under rank-partitioned FS (sum of weighted IPCs)\n");
    println!("{:<24} {:>4} {:>10} {:>12}", "anchor", "l", "peak util", "AM wIPC");

    let mut solutions = Vec::new();
    for anchor in Anchor::all() {
        match solve(&t, anchor, PartitionLevel::Rank) {
            Ok(sol) => solutions.push((anchor, sol)),
            Err(e) => println!("  diagnostic: {anchor:?} has no feasible pipeline: {e}"),
        }
    }

    // One plan: the 12 shared baselines first, then 12 FS runs per anchor.
    let mut plan = ExperimentPlan::new();
    for mix in &suite {
        plan.push(ExperimentJob::new(mix.clone(), K::Baseline, cycles, sd));
    }
    for &(_, sol) in &solutions {
        let factory: ControllerFactory = Arc::new(move |cfg| {
            Ok(Box::new(FsScheduler::with_pipeline(
                cfg.geometry,
                cfg.timing,
                8,
                FsVariant::RankPartitioned,
                sol,
                EnergyOptions::default(),
            )))
        });
        for mix in &suite {
            plan.push(
                ExperimentJob::new(mix.clone(), K::FsRankPartitioned, cycles, sd)
                    .with_controller(factory.clone()),
            );
        }
    }
    let results = Engine::from_env().run(&plan);
    let (bases, fs_runs) = results.split_at(suite.len());

    let mut any_ok = false;
    for ((anchor, sol), chunk) in solutions.iter().zip(fs_runs.chunks(suite.len())) {
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((mix, base), run) in suite.iter().zip(bases).zip(chunk) {
            match (base, run) {
                (Ok(b), Ok(r)) => {
                    any_ok = true;
                    sum += r.weighted_ipc_vs(b);
                    n += 1;
                }
                (Err(e), _) => println!("  diagnostic: {}/baseline: {e}", mix.name),
                (Ok(_), Err(e)) => println!("  diagnostic: {}/{anchor:?}: {e}", mix.name),
            }
        }
        println!(
            "{:<24} {:>4} {:>9.1}% {:>12.3}",
            format!("{anchor:?}"),
            sol.l,
            100.0 * sol.peak_data_utilization(&t),
            if n > 0 { sum / n as f64 } else { f64::NAN }
        );
    }
    println!("\nThe paper's choice (fixed periodic data) buys ~1.7x the slot rate of");
    println!("the command-anchored pipelines — the whole FS_RP advantage over basic");
    println!("bank-partitioned designs comes from this asymmetry.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
