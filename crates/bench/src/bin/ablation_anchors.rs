//! Ablation: the Section 3.1 "fixed periodic commands" design choice.
//! Anchoring the *data* transfer gives l = 7 under rank partitioning;
//! anchoring the Activate (RAS) or the column command (CAS) gives
//! l = 12. This binary runs all three through the same FS scheduler to
//! quantify the end-to-end cost of the wrong anchor.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
use fsmc_core::sched::SchedulerKind;
use fsmc_core::solver::{solve, Anchor, PartitionLevel};
use fsmc_cpu::trace::TraceSource;
use fsmc_dram::TimingParams;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::{SyntheticTrace, WorkloadMix};

fn main() {
    let cycles = run_cycles();
    let sd = seed();
    let t = TimingParams::ddr3_1600();
    let suite = WorkloadMix::suite(8);
    println!("Anchor ablation under rank-partitioned FS (sum of weighted IPCs)\n");
    println!("{:<24} {:>4} {:>10} {:>12}", "anchor", "l", "peak util", "AM wIPC");
    for anchor in Anchor::all() {
        let sol = solve(&t, anchor, PartitionLevel::Rank).expect("solves");
        let mut sum = 0.0;
        for mix in &suite {
            let cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
            let base = {
                let bcfg = SystemConfig::paper_default(SchedulerKind::Baseline);
                let mut sys = System::from_mix(&bcfg, mix, sd);
                sys.run_cycles(cycles).ipcs()
            };
            let controller = Box::new(FsScheduler::with_pipeline(
                cfg.geometry,
                cfg.timing,
                8,
                FsVariant::RankPartitioned,
                sol,
                EnergyOptions::default(),
            ));
            let traces: Vec<Box<dyn TraceSource>> = mix
                .profiles
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    Box::new(SyntheticTrace::new(*p, sd + i as u64)) as Box<dyn TraceSource>
                })
                .collect();
            let mut sys = System::with_controller(&cfg, traces, controller);
            sum += sys.run_cycles(cycles).weighted_ipc_vs(&base);
        }
        println!(
            "{:<24} {:>4} {:>9.1}% {:>12.3}",
            format!("{anchor:?}"),
            sol.l,
            100.0 * sol.peak_data_utilization(&t),
            sum / suite.len() as f64
        );
    }
    println!("\nThe paper's choice (fixed periodic data) buys ~1.7x the slot rate of");
    println!("the command-anchored pipelines — the whole FS_RP advantage over basic");
    println!("bank-partitioned designs comes from this asymmetry.");
}
