//! Section 4.1's first design point: with thread count <= channel count,
//! channel partitioning is "most efficient ... there are no timing
//! channels". This binary quantifies it: 4 domains on 4 private channels
//! versus the same domains sharing one secure FS channel.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::WorkloadMix;

fn main() {
    let cycles = run_cycles();
    let sd = seed();
    let suite = [WorkloadMix::mix1_for(4), WorkloadMix::mix2_for(4)];
    println!("Channel partitioning vs shared-channel policies (4 domains)\n");
    println!("{:<10} {:>20} {:>14} {:>10}", "mix", "Channel_Partitioned", "FS_RP", "Baseline");
    for mix in &suite {
        let mut row = Vec::new();
        for kind in [K::ChannelPartitioned, K::FsRankPartitioned, K::Baseline] {
            let cfg = SystemConfig::with_cores(kind, 4);
            let mut sys = System::from_mix(&cfg, mix, sd);
            row.push(sys.run_cycles(cycles).ipc_sum());
        }
        println!("{:<10} {:>20.3} {:>14.3} {:>10.3}", mix.name, row[0], row[1], row[2]);
    }
    println!("\nPrivate channels beat even the shared non-secure baseline (4x the");
    println!("aggregate bandwidth) while being non-interfering by construction —");
    println!("the paper's recommendation whenever thread count <= channel count.");
}
