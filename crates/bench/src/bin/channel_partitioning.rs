//! Section 4.1's first design point: with thread count <= channel count,
//! channel partitioning is "most efficient ... there are no timing
//! channels". This binary quantifies it: 4 domains on 4 private channels
//! versus the same domains sharing one secure FS channel. The 2×3 grid
//! runs as one engine plan.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{Engine, ExperimentPlan};
use fsmc_workload::WorkloadMix;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cycles = run_cycles();
    let sd = seed();
    let suite = [WorkloadMix::mix1_for(4), WorkloadMix::mix2_for(4)];
    let kinds = [K::ChannelPartitioned, K::FsRankPartitioned, K::Baseline];
    println!("Channel partitioning vs shared-channel policies (4 domains)\n");
    println!("{:<10} {:>20} {:>14} {:>10}", "mix", "Channel_Partitioned", "FS_RP", "Baseline");
    let plan = ExperimentPlan::grid(&suite, &kinds, cycles, sd);
    let results = Engine::from_env().run(&plan);
    let mut any_ok = false;
    for (mix, chunk) in suite.iter().zip(results.chunks(kinds.len())) {
        print!("{:<10}", mix.name);
        for (width, run) in [20usize, 14, 10].iter().zip(chunk) {
            match run {
                Ok(r) => {
                    any_ok = true;
                    print!(" {:>width$.3}", r.stats.ipc_sum());
                }
                Err(_) => print!(" {:>width$}", "FAILED"),
            }
        }
        println!();
        for (kind, run) in kinds.iter().zip(chunk) {
            if let Err(e) = run {
                println!("  diagnostic: {}/{kind}: {e}", mix.name);
            }
        }
    }
    println!("\nPrivate channels beat even the shared non-secure baseline (4x the");
    println!("aggregate bandwidth) while being non-interfering by construction —");
    println!("the paper's recommendation whenever thread count <= channel count.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
