//! Figure 7: the sandbox-prefetch optimisation — baseline with prefetch,
//! FS_RP with prefetch (dummy slots become prefetches), plain FS_RP.
//! Runs on the experiment engine; a failed slot renders as FAILED
//! instead of killing the figure.

use fsmc_bench::{run_cycles, seed, suite_exit_code, suite_results};
use fsmc_core::sched::SchedulerKind as K;
use std::process::ExitCode;

fn main() -> ExitCode {
    let kinds = [K::BaselinePrefetch, K::FsRankPartitionedPrefetch, K::FsRankPartitioned];
    let rows = suite_results(&kinds, run_cycles(), seed());
    println!("Figure 7: FS with 8 threads and rank partitioning, with and without prefetch\n");
    println!(
        "{:<12} {:>18} {:>18} {:>18}",
        "workload", "Baseline_Prefetch", "FS_RP-Prefetch", "FS_RP"
    );
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    let mut pf_issued = 0u64;
    let mut pf_useful = 0u64;
    let mut diagnostics = Vec::new();
    for suite in &rows {
        print!("{:<12}", suite.mix_name);
        for (i, (kind, run)) in suite.runs.iter().enumerate() {
            match (&suite.baseline, run) {
                (Ok(base), Ok(r)) => {
                    let v = r.weighted_ipc_vs(base);
                    sums[i] += v;
                    counts[i] += 1;
                    print!(" {v:>18.3}");
                    if *kind == K::FsRankPartitionedPrefetch {
                        pf_issued += r.stats.mc.domains().iter().map(|d| d.prefetches).sum::<u64>();
                        pf_useful += r.stats.useful_prefetches;
                    }
                }
                (Err(e), _) => {
                    print!(" {:>18}", "FAILED");
                    diagnostics.push(format!("{}/baseline: {e}", suite.mix_name));
                }
                (Ok(_), Err(e)) => {
                    print!(" {:>18}", "FAILED");
                    diagnostics.push(format!("{}/{kind}: {e}", suite.mix_name));
                }
            }
        }
        println!();
    }
    print!("{:<12}", "AM");
    for (s, n) in sums.iter().zip(&counts) {
        print!(" {:>18.3}", s / (*n).max(1) as f64);
    }
    println!();
    // Dedup (a failed baseline repeats across its row's columns) without
    // re-sorting: diagnostics print in slot order — row by row, column by
    // column, as declared — not alphabetically, so the footer is stable
    // and matches the table layout at any FSMC_THREADS.
    let mut seen = std::collections::HashSet::new();
    diagnostics.retain(|d| seen.insert(d.clone()));
    for d in &diagnostics {
        println!("  diagnostic: {d}");
    }
    if counts[1] > 0 && counts[2] > 0 {
        println!(
            "\nFS prefetch improvement: {:.1}% (paper: 11%)",
            100.0 * ((sums[1] / counts[1] as f64) / (sums[2] / counts[2] as f64) - 1.0)
        );
    }
    if pf_issued > 0 {
        println!(
            "FS prefetches issued: {pf_issued}; useful: {pf_useful} ({:.1}%; paper: 43.7%)",
            100.0 * pf_useful as f64 / pf_issued as f64
        );
    }
    suite_exit_code(&rows)
}
