//! Figure 7: the sandbox-prefetch optimisation — baseline with prefetch,
//! FS_RP with prefetch (dummy slots become prefetches), plain FS_RP.

use fsmc_bench::{run_cycles, seed, suite_results};
use fsmc_core::sched::SchedulerKind as K;

fn main() {
    let kinds = [K::BaselinePrefetch, K::FsRankPartitionedPrefetch, K::FsRankPartitioned];
    let rows = suite_results(&kinds, run_cycles(), seed());
    println!("Figure 7: FS with 8 threads and rank partitioning, with and without prefetch\n");
    println!(
        "{:<12} {:>18} {:>18} {:>18}",
        "workload", "Baseline_Prefetch", "FS_RP-Prefetch", "FS_RP"
    );
    let mut sums = [0.0f64; 3];
    let mut pf_issued = 0u64;
    let mut pf_useful = 0u64;
    let n = rows.len();
    for (name, base, runs) in &rows {
        let mut vals = [0.0f64; 3];
        for (i, r) in runs.iter().enumerate() {
            vals[i] = r.weighted_ipc_vs(base);
            sums[i] += vals[i];
        }
        pf_issued += runs[1].stats.mc.domains().iter().map(|d| d.prefetches).sum::<u64>();
        pf_useful += runs[1].stats.useful_prefetches;
        println!("{name:<12} {:>18.3} {:>18.3} {:>18.3}", vals[0], vals[1], vals[2]);
    }
    println!(
        "{:<12} {:>18.3} {:>18.3} {:>18.3}",
        "AM",
        sums[0] / n as f64,
        sums[1] / n as f64,
        sums[2] / n as f64
    );
    println!("\nFS prefetch improvement: {:.1}% (paper: 11%)", 100.0 * (sums[1] / sums[2] - 1.0));
    if pf_issued > 0 {
        println!(
            "FS prefetches issued: {pf_issued}; useful: {pf_useful} ({:.1}%; paper: 43.7%)",
            100.0 * pf_useful as f64 / pf_issued as f64
        );
    }
}
