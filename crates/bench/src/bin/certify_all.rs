//! Certifies every FS pipeline on every device generation: the
//! mechanised form of the paper's zero-conflict theorem. Each schedule
//! is exhausted over all slot pairs, direction combinations and
//! worst-case rank/bank/bank-group sharing, and each case is replayed
//! through the independent rule checker built from that generation's
//! profile. The (generation x pipeline) grid runs concurrently on the
//! experiment engine; a solver failure becomes a diagnostic instead of
//! a panic.

use fsmc_core::solver::{
    certify_reordered, certify_uniform, solve, solve_for_threads, Anchor, CertifyReport,
    PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc_dram::DeviceGeneration;
use fsmc_sim::Engine;
use std::process::ExitCode;

const CASES: [&str; 5] = [
    "FS rank-partitioned",
    "FS bank-partitioned",
    "FS no-partitioning naive",
    "FS triple alternation",
    "FS reordered bank-partitioned",
];

fn certify_case(idx: usize, device: DeviceGeneration) -> Result<CertifyReport, String> {
    let p = device.profile();
    let (t, geom) = (&p.timing, &p.geometry);
    let err = |e| format!("{e}");
    Ok(match idx {
        0 => {
            let sol = solve(t, Anchor::FixedPeriodicData, PartitionLevel::Rank).map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Rank, t, geom, 4)
        }
        1 => {
            let sol = solve_for_threads(t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8)
                .map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Bank, t, geom, 4)
        }
        2 => {
            let sol = solve_for_threads(t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8)
                .map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::None, t, geom, 4)
        }
        3 => {
            let s = SlotSchedule::triple_alternation(t, 8).map_err(err)?;
            certify_uniform(&s, PartitionLevel::None, t, geom, 3)
        }
        _ => certify_reordered(&ReorderedBpSchedule::new(t, 8), t, geom, 3),
    })
}

fn main() -> ExitCode {
    println!("Certifying FS pipelines (pairwise-exhaustive, independent checker)\n");

    let grid: Vec<(DeviceGeneration, usize)> = DeviceGeneration::all()
        .into_iter()
        .flat_map(|d| (0..CASES.len()).map(move |i| (d, i)))
        .collect();
    let reports = Engine::from_env().map(&grid, |_, &(d, i)| certify_case(i, d));
    let mut any_ok = false;
    for ((device, idx), report) in grid.iter().zip(&reports) {
        let name = format!("{device} {}", CASES[*idx]);
        match report {
            Ok(r) => {
                any_ok = true;
                println!(
                    "{name:<48} {:>8} cases   {}",
                    r.cases,
                    if r.certified() { "CERTIFIED" } else { "FAILED" }
                );
                if let Some(v) = r.violations.first() {
                    println!("    first violation: {v}");
                }
            }
            Err(e) => println!("{name:<48} {:>8}          diagnostic: {e}", "-"),
        }
    }

    println!("\nEvery schedule is conflict-free for every read/write mix on every");
    println!("generation — the paper's zero-leakage precondition, checked rather");
    println!("than assumed.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
