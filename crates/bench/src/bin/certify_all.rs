//! Certifies every FS pipeline: the mechanised form of the paper's
//! zero-conflict theorem. Each schedule is exhausted over all slot
//! pairs, direction combinations and worst-case rank/bank sharing, and
//! each case is replayed through the independent DDR3 rule checker.

use fsmc_core::solver::{
    certify_reordered, certify_uniform, solve, solve_for_threads, Anchor, PartitionLevel,
    ReorderedBpSchedule, SlotSchedule,
};
use fsmc_dram::TimingParams;

fn main() {
    let t = TimingParams::ddr3_1600();
    println!("Certifying FS pipelines (pairwise-exhaustive, independent checker)\n");

    let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
    let s = SlotSchedule::uniform(sol, 8);
    let r = certify_uniform(&s, PartitionLevel::Rank, &t, 4);
    report("FS rank-partitioned (l=7)", &r);

    let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8).unwrap();
    let s = SlotSchedule::uniform(sol, 8);
    let r = certify_uniform(&s, PartitionLevel::Bank, &t, 4);
    report("FS bank-partitioned (l=15)", &r);

    let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8).unwrap();
    let s = SlotSchedule::uniform(sol, 8);
    let r = certify_uniform(&s, PartitionLevel::None, &t, 4);
    report("FS no-partitioning naive (l=43)", &r);

    let s = SlotSchedule::triple_alternation(&t, 8).unwrap();
    let r = certify_uniform(&s, PartitionLevel::None, &t, 3);
    report("FS triple alternation (l=15, groups)", &r);

    let s = ReorderedBpSchedule::new(&t, 8);
    let r = certify_reordered(&s, &t, 3);
    report("FS reordered bank-partitioned (Q=63)", &r);

    println!("\nEvery schedule is conflict-free for every read/write mix — the paper's");
    println!("zero-leakage precondition, checked rather than assumed.");
}

fn report(name: &str, r: &fsmc_core::solver::CertifyReport) {
    println!(
        "{name:<40} {:>8} cases   {}",
        r.cases,
        if r.certified() { "CERTIFIED" } else { "FAILED" }
    );
    if let Some(v) = r.violations.first() {
        println!("    first violation: {v}");
    }
}
