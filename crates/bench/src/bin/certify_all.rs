//! Certifies every FS pipeline: the mechanised form of the paper's
//! zero-conflict theorem. Each schedule is exhausted over all slot
//! pairs, direction combinations and worst-case rank/bank sharing, and
//! each case is replayed through the independent DDR3 rule checker.
//! The five certifications run concurrently on the experiment engine;
//! a solver failure becomes a diagnostic instead of a panic.

use fsmc_core::solver::{
    certify_reordered, certify_uniform, solve, solve_for_threads, Anchor, CertifyReport,
    PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc_dram::TimingParams;
use fsmc_sim::Engine;
use std::process::ExitCode;

const CASES: [&str; 5] = [
    "FS rank-partitioned (l=7)",
    "FS bank-partitioned (l=15)",
    "FS no-partitioning naive (l=43)",
    "FS triple alternation (l=15, groups)",
    "FS reordered bank-partitioned (Q=63)",
];

fn certify_case(idx: usize, t: &TimingParams) -> Result<CertifyReport, String> {
    let err = |e| format!("{e}");
    Ok(match idx {
        0 => {
            let sol = solve(t, Anchor::FixedPeriodicData, PartitionLevel::Rank).map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Rank, t, 4)
        }
        1 => {
            let sol = solve_for_threads(t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8)
                .map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Bank, t, 4)
        }
        2 => {
            let sol = solve_for_threads(t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8)
                .map_err(err)?;
            certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::None, t, 4)
        }
        3 => {
            let s = SlotSchedule::triple_alternation(t, 8).map_err(err)?;
            certify_uniform(&s, PartitionLevel::None, t, 3)
        }
        _ => certify_reordered(&ReorderedBpSchedule::new(t, 8), t, 3),
    })
}

fn main() -> ExitCode {
    let t = TimingParams::ddr3_1600();
    println!("Certifying FS pipelines (pairwise-exhaustive, independent checker)\n");

    let indices: Vec<usize> = (0..CASES.len()).collect();
    let reports = Engine::from_env().map(&indices, |_, &i| certify_case(i, &t));
    let mut any_ok = false;
    for (name, report) in CASES.iter().zip(&reports) {
        match report {
            Ok(r) => {
                any_ok = true;
                println!(
                    "{name:<40} {:>8} cases   {}",
                    r.cases,
                    if r.certified() { "CERTIFIED" } else { "FAILED" }
                );
                if let Some(v) = r.violations.first() {
                    println!("    first violation: {v}");
                }
            }
            Err(e) => println!("{name:<40} {:>8}          diagnostic: {e}", "-"),
        }
    }

    println!("\nEvery schedule is conflict-free for every read/write mix — the paper's");
    println!("zero-leakage precondition, checked rather than assumed.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
