//! The Section 3.1 / 4.2 / 4.3 pipeline table: minimum slot pitch `l`
//! for every anchor x partition combination, with Q and peak data-bus
//! utilization for 8 threads.

use fsmc_core::solver::{solve, Anchor, PartitionLevel};
use fsmc_dram::TimingParams;

fn main() {
    let t = TimingParams::ddr3_1600();
    println!("Pipeline solver results (DDR3-1600, Table 1 parameters)");
    println!("{:<8} {:<22} {:>4} {:>8} {:>10}", "part.", "anchor", "l", "Q(8thr)", "peak util");
    for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
        for anchor in Anchor::all() {
            match solve(&t, anchor, level) {
                Ok(s) => println!(
                    "{:<8} {:<22} {:>4} {:>8} {:>9.1}%",
                    format!("{level:?}"),
                    format!("{anchor:?}"),
                    s.l,
                    s.interval_q(8),
                    100.0 * s.peak_data_utilization(&t)
                ),
                Err(e) => println!("{level:?} {anchor:?}: {e}"),
            }
        }
    }
    println!();
    println!("Paper checkpoints: Rank/Data=7, Rank/RAS=12, Rank/CAS=12,");
    println!("                   Bank/Data=21, Bank/RAS=15, None/RAS=43");
}
