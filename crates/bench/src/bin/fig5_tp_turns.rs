//! Figure 5: TP sensitivity to turn length (bank-partitioned 60/100/156,
//! non-partitioned 172/212/268 DRAM cycles).

use fsmc_bench::{run_cycles, seed, weighted_ipc_suite};
use fsmc_core::sched::SchedulerKind as K;
use std::process::ExitCode;

fn main() -> ExitCode {
    let kinds = [
        K::TpBankPartitioned { turn: 60 },
        K::TpBankPartitioned { turn: 100 },
        K::TpBankPartitioned { turn: 156 },
        K::TpNoPartition { turn: 172 },
        K::TpNoPartition { turn: 212 },
        K::TpNoPartition { turn: 268 },
    ];
    let table = weighted_ipc_suite(&kinds, run_cycles(), seed());
    fsmc_bench::save_result_or_warn("fig5_tp_turns.csv", &table.to_csv());
    println!("Figure 5: TP with varying turn lengths, 8 threads");
    println!("(non-secure baseline scores 8.0 on this metric)\n");
    print!("{}", table.render("sum of weighted IPCs"));
    let m = table.arithmetic_means();
    println!("\nPaper finding: minimum turn lengths are best (wait time dominates).");
    println!(
        "Measured: BP {:.2} / {:.2} / {:.2} — NP {:.2} / {:.2} / {:.2}",
        m[0], m[1], m[2], m[3], m[4], m[5]
    );
    table.exit_code()
}
