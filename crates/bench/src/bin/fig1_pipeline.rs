//! Figure 1: the 8-thread rank-partitioned pipeline, six reads and two
//! writes, rendered cycle by cycle and verified conflict-free.

use fsmc_core::solver::diagram::render_uniform;
use fsmc_core::solver::{solve_best, PartitionLevel, SlotSchedule};
use fsmc_dram::TimingParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let t = TimingParams::ddr3_1600();
    let sol = match solve_best(&t, PartitionLevel::Rank) {
        Ok(sol) => sol,
        Err(e) => {
            eprintln!("error: rank pipeline does not solve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = SlotSchedule::uniform(sol, 8);
    println!("Figure 1: fixed-periodic-data pipeline, l = {}, Q = {}", sol.l, s.q());
    println!("Mix: RD RD RD RD RD WR WR RD (threads T0..T7 on ranks R0..R7)\n");
    let mix = [false, false, false, false, false, true, true, false];
    print!("{}", render_uniform(&s, &t, &mix, 16));
    println!("\nEach digit is a thread id; '.' is an idle cycle on that resource.");
    println!("Any mix of reads and writes from 8 threads completes every 56 cycles.");
    ExitCode::SUCCESS
}
