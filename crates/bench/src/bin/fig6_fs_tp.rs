//! Figure 6: per-workload performance of the FS design points against
//! the best TP variants, 8 cores.

use fsmc_bench::{run_cycles, seed, weighted_ipc_suite};
use fsmc_core::sched::SchedulerKind as K;
use std::process::ExitCode;

fn main() -> ExitCode {
    let kinds = [
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
        K::FsTripleAlternation,
        K::TpNoPartition { turn: 172 },
    ];
    let table = weighted_ipc_suite(&kinds, run_cycles(), seed());
    fsmc_bench::save_result_or_warn("fig6_fs_tp.csv", &table.to_csv());
    println!("Figure 6: performance for 8-core FS and TP\n");
    print!("{}", table.render("sum of weighted IPCs; baseline = 8"));
    let m = table.arithmetic_means();
    println!("\nKey ratios (paper): FS_RP / TP_BP = {:.2} (1.69);", m[0] / m[2]);
    println!("                    FS_ReBP / TP_BP = {:.2} (1.11);", m[1] / m[2]);
    println!("                    FS_NP_Opt / TP_NP = {:.2} (2.0)", m[3] / m[4]);
    println!("CSV:\n{}", table.to_csv());
    table.exit_code()
}
