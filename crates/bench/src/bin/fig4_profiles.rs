//! Figure 4: execution profiles for mcf under the baseline and FS, with
//! idle or memory-intensive co-runners. The two FS curves must overlap
//! exactly — zero information leakage. The four profile simulations run
//! concurrently on the experiment engine.

use fsmc_core::sched::SchedulerKind as K;
use fsmc_security::noninterference::{execution_profile, CoRunners};
use fsmc_sim::Engine;
use std::process::ExitCode;

fn main() -> ExitCode {
    let bucket =
        std::env::var("FSMC_BUCKET").ok().and_then(|v| v.parse().ok()).unwrap_or(10_000u64);
    let buckets =
        std::env::var("FSMC_BUCKETS").ok().and_then(|v| v.parse().ok()).unwrap_or(20usize);
    println!("Figure 4: time (CPU cycles) to complete each {bucket}-instruction block for mcf\n");
    let cases = [
        (K::Baseline, CoRunners::Idle),
        (K::Baseline, CoRunners::MemoryIntensive),
        (K::FsRankPartitioned, CoRunners::Idle),
        (K::FsRankPartitioned, CoRunners::MemoryIntensive),
    ];
    let profiles = Engine::from_env()
        .map(&cases, |_, &(kind, co)| execution_profile(kind, co, bucket, buckets));
    let [base_idle, base_mem, fs_idle, fs_mem] = &profiles[..] else {
        unreachable!("map preserves slot count")
    };
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "block", "base+idle", "base+intensive", "FS+idle", "FS+intensive"
    );
    for i in 0..buckets {
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            (i + 1),
            base_idle.boundaries.get(i).copied().unwrap_or(0),
            base_mem.boundaries.get(i).copied().unwrap_or(0),
            fs_idle.boundaries.get(i).copied().unwrap_or(0),
            fs_mem.boundaries.get(i).copied().unwrap_or(0),
        );
    }
    let div_base = base_idle.max_divergence(base_mem);
    let div_fs = fs_idle.max_divergence(fs_mem);
    println!("\nBaseline divergence between environments: {div_base} CPU cycles (leaks)");
    println!("FS divergence between environments:       {div_fs} CPU cycles");
    if div_fs != 0 {
        eprintln!("error: FS must be perfectly non-interfering, diverged by {div_fs} cycles");
        return ExitCode::FAILURE;
    }
    println!("FS curves overlap perfectly: zero information leakage, as proved in Sec. 3.");
    ExitCode::SUCCESS
}
