//! Table 1: simulator and DRAM parameters.

use fsmc_core::sched::SchedulerKind;
use fsmc_sim::SystemConfig;

fn main() {
    let c = SystemConfig::paper_default(SchedulerKind::Baseline);
    let t = c.timing;
    let g = c.geometry;
    println!("Table 1: Simulator and DRAM parameters");
    println!("=======================================");
    println!("Processor");
    println!(
        "  CMP size and core freq     {}-core, 3.2 GHz (x{} DRAM bus ratio)",
        c.cores, t.cpu_ratio
    );
    println!("  ROB size per core          {} entries", c.core.rob_size);
    println!("  Fetch/retire width         {} per cycle", c.core.width);
    println!("DRAM");
    println!(
        "  Channels/ranks/banks       1 ch, {} ranks/ch, {} banks/rank",
        g.ranks_per_channel(),
        g.banks_per_rank()
    );
    println!("  Capacity                   {} GiB", g.capacity_bytes() >> 30);
    println!("DRAM timing (DRAM bus cycles @ 800 MHz)");
    println!("  tRC={}, tRCD={}, tRAS={}, tFAW={}", t.t_rc, t.t_rcd, t.t_ras, t.t_faw);
    println!("  tWR={}, tRP={}, tRTRS={}, tCAS={}", t.t_wr, t.t_rp, t.t_rtrs, t.t_cas);
    println!("  tRTP={}, tBURST={}, tCCD={}, tWTR={}", t.t_rtp, t.t_burst, t.t_ccd, t.t_wtr);
    println!("  tRRD={}, tREFI={}, tRFC={}, tCWD={}", t.t_rrd, t.t_refi, t.t_rfc, t.t_cwd);
    println!("Derived turnarounds");
    println!("  Rd2Wr = tCAS+tBURST-tCWD = {}", t.rd_to_wr_same_rank());
    println!("  Wr2Rd = tCWD+tBURST+tWTR = {}", t.wr_to_rd_same_rank());
    println!("  same-bank write turnaround = {}", t.same_bank_wr_turnaround());
}
