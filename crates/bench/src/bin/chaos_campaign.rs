//! Chaos campaign over the FS schedulers: seeded fault populations,
//! outcome classification, fault shrinking, and non-interference under
//! fault.
//!
//! For each scheduler, a deterministic population of random fault plans
//! runs against a fault-free reference with the online invariant monitor
//! armed; every failing plan (violation / stall / diverged) is shrunk to
//! a 1-minimal fault set and printed with a standalone repro command.
//! Plans the system absorbs by graceful degradation are then re-checked
//! for the paper's core guarantee: the attacker's execution profile must
//! stay **bit-identical** across co-runner environments even while the
//! controller runs degraded.
//!
//! Knobs: `FSMC_CHAOS_SEED` (population seed, default 1),
//! `FSMC_CHAOS_POPULATION` (plans per scheduler, default 12),
//! `FSMC_CHAOS_CHURN=1` (add persistent-fault and domain join/leave
//! kinds to the pool, enabling the `reconfigured` / `reconfig-leak`
//! outcomes), `FSMC_DEVICE` (device generation under chaos, default
//! ddr3-1600 — the nightly soak sweeps all four), `FSMC_CYCLES`
//! (default 8 000 for this binary), `FSMC_SEED` (workload seed),
//! `FSMC_THREADS`. Output is byte-identical at any thread count.

use fsmc_bench::{save_result_or_warn, seed};
use fsmc_core::sched::SchedulerKind;
use fsmc_dram::DeviceGeneration;
use fsmc_security::check_noninterference_faulted;
use fsmc_sim::engine::{env_flag, env_u64};
use fsmc_sim::{run_campaign, CampaignConfig, Engine, Outcome};
use std::process::ExitCode;

fn main() -> ExitCode {
    let engine = Engine::from_env();
    let population = env_u64("FSMC_CHAOS_POPULATION", 12) as usize;
    let cycles = fsmc_sim::env::cycles(8_000);
    let master = env_u64("FSMC_CHAOS_SEED", 1);
    let device = fsmc_sim::env::device(DeviceGeneration::Ddr3_1600);
    println!("device: {device}\n");
    let mut csv = String::from("device,scheduler,case,outcome,fault_seed,faults,shrunk\n");
    let mut ok = true;
    for kind in [SchedulerKind::FsRankPartitioned, SchedulerKind::FsNoPartitionNaive] {
        let mut cfg = CampaignConfig::new(master);
        cfg.population = population;
        cfg.cycles = cycles;
        cfg.run_seed = seed();
        cfg.scheduler = kind;
        cfg.device = device;
        cfg.churn = env_flag("FSMC_CHAOS_CHURN", false);
        let report = match run_campaign(&engine, &cfg) {
            Ok(r) => r,
            Err(e) => {
                println!("{kind}: reference run failed: {e}\n");
                ok = false;
                continue;
            }
        };
        print!("{}", report.render());
        for case in &report.cases {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                device,
                kind.label(),
                case.index,
                case.outcome,
                case.plan.seed,
                case.plan.spec(),
                case.shrunk.as_ref().map(|p| p.spec()).unwrap_or_default()
            ));
        }
        // Security under fault: non-interference must survive every plan
        // the system degrades gracefully on (probe a bounded sample).
        for case in report.cases.iter().filter(|c| c.outcome == Outcome::GracefulDegrade).take(3) {
            match check_noninterference_faulted(kind, 800, 5, &case.plan) {
                Ok(r) if r.is_non_interfering() => println!(
                    "case {:>3}  non-interference holds under '{}'",
                    case.index,
                    case.plan.spec()
                ),
                Ok(r) => {
                    ok = false;
                    println!(
                        "case {:>3}  LEAK under '{}': divergence {} CPU cycles",
                        case.index,
                        case.plan.spec(),
                        r.max_divergence()
                    );
                }
                // The probe's 8-core harness can fail on a plan the
                // 4-core campaign absorbed (e.g. a stall); that is a
                // reported outcome, not a leak.
                Err(e) => {
                    println!("case {:>3}  non-interference probe aborted: {e}", case.index)
                }
            }
        }
        println!();
    }
    save_result_or_warn("chaos_campaign.csv", &csv);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
