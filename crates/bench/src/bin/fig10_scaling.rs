//! Figure 10: sensitivity to core count — rank/bank-partitioned FS and
//! bank-partitioned TP at 2, 4 and 8 cores, with as many ranks as
//! threads (the paper's assumption for this study). The whole
//! 3-core-count × 12-workload × 4-policy grid runs as one engine plan.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_dram::Geometry;
use fsmc_sim::{Engine, ExperimentJob, ExperimentPlan, SystemConfig};
use fsmc_workload::WorkloadMix;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cycles = run_cycles();
    let sd = seed();
    let kinds =
        [K::FsRankPartitioned, K::FsReorderedBankPartitioned, K::TpBankPartitioned { turn: 60 }];
    let core_counts = [8usize, 4, 2];
    println!("Figure 10: performance vs core count (sum of weighted IPCs; ranks = threads)\n");
    println!("{:<8} {:>14} {:>18} {:>10}", "cores", "FS_RP", "FS_Reordered_BP", "TP_BP");

    let mut plan = ExperimentPlan::new();
    let mut suites = Vec::new();
    for &cores in &core_counts {
        let geom = Geometry::new(1, cores as u8, 8, 32768, 128);
        let suite: Vec<WorkloadMix> = WorkloadMix::suite(8)
            .iter()
            .map(|m| WorkloadMix {
                name: m.name,
                profiles: m.profiles.iter().cycle().take(cores).copied().collect(),
            })
            .collect();
        for mix in &suite {
            for kind in std::iter::once(K::Baseline).chain(kinds) {
                let mut cfg = SystemConfig::with_cores(kind, cores as u8);
                cfg.geometry = geom;
                plan.push(ExperimentJob::new(mix.clone(), kind, cycles, sd).with_config(cfg));
            }
        }
        suites.push(suite);
    }
    let results = Engine::from_env().run(&plan);
    let mut slots = results.iter();
    let mut any_ok = false;
    for (suite, cores) in suites.iter().zip(core_counts) {
        let mut sums = [0.0f64; 3];
        for mix in suite {
            let base = slots.next().expect("baseline slot");
            let runs: Vec<_> = (0..kinds.len()).map(|_| slots.next().expect("slot")).collect();
            let base = match base {
                Ok(b) => {
                    any_ok = true;
                    b
                }
                Err(e) => {
                    println!("  diagnostic: {cores} cores/{}/baseline: {e}", mix.name);
                    continue;
                }
            };
            for (i, run) in runs.iter().enumerate() {
                match run {
                    Ok(r) => {
                        any_ok = true;
                        sums[i] += r.weighted_ipc_vs(base);
                    }
                    Err(e) => {
                        println!("  diagnostic: {cores} cores/{}/{}: {e}", mix.name, kinds[i])
                    }
                }
            }
        }
        let n = suite.len() as f64;
        println!("{:<8} {:>14.3} {:>18.3} {:>10.3}", cores, sums[0] / n, sums[1] / n, sums[2] / n);
    }
    println!("\nPaper: FS outperforms TP by 85% at 4 cores and 18% at 2 cores; at low");
    println!("core counts FS_RP needs a longer pitch (the 43-cycle same-rank hazard),");
    println!("which the solver derives automatically (l = 12 at 2 threads).");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
