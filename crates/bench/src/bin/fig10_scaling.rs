//! Figure 10: sensitivity to core count — rank/bank-partitioned FS and
//! bank-partitioned TP at 2, 4 and 8 cores, with as many ranks as
//! threads (the paper's assumption for this study).

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_dram::Geometry;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::WorkloadMix;

fn weighted(kind: K, mix: &WorkloadMix, geom: Geometry, cycles: u64, sd: u64) -> Vec<f64> {
    let mut cfg = SystemConfig::with_cores(kind, mix.cores() as u8);
    cfg.geometry = geom;
    let mut sys = System::from_mix(&cfg, mix, sd);
    sys.run_cycles(cycles).ipcs()
}

fn main() {
    let cycles = run_cycles();
    let sd = seed();
    println!("Figure 10: performance vs core count (sum of weighted IPCs; ranks = threads)\n");
    println!("{:<8} {:>14} {:>18} {:>10}", "cores", "FS_RP", "FS_Reordered_BP", "TP_BP");
    for cores in [8usize, 4, 2] {
        let geom = Geometry::new(1, cores as u8, 8, 32768, 128);
        let kinds = [
            K::FsRankPartitioned,
            K::FsReorderedBankPartitioned,
            K::TpBankPartitioned { turn: 60 },
        ];
        let suite: Vec<WorkloadMix> = WorkloadMix::suite(8)
            .iter()
            .map(|m| WorkloadMix {
                name: m.name,
                profiles: m.profiles.iter().cycle().take(cores).copied().collect(),
            })
            .collect();
        let mut sums = [0.0f64; 3];
        for mix in &suite {
            let base = weighted(K::Baseline, mix, geom, cycles, sd);
            for (i, &kind) in kinds.iter().enumerate() {
                let ipcs = weighted(kind, mix, geom, cycles, sd);
                sums[i] += ipcs
                    .iter()
                    .zip(&base)
                    .map(|(a, b)| if *b > 0.0 { a / b } else { 0.0 })
                    .sum::<f64>();
            }
        }
        let n = suite.len() as f64;
        println!("{:<8} {:>14.3} {:>18.3} {:>10.3}", cores, sums[0] / n, sums[1] / n, sums[2] / n);
    }
    println!("\nPaper: FS outperforms TP by 85% at 4 cores and 18% at 2 cores; at low");
    println!("core counts FS_RP needs a longer pitch (the 43-cycle same-rank hazard),");
    println!("which the solver derives automatically (l = 12 at 2 threads).");
}
