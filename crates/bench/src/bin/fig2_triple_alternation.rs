//! Figure 2: the naive no-partitioning pipeline (43-cycle gaps) versus
//! triple alternation (15-cycle gaps with rotating bank groups).

use fsmc_core::solver::diagram::render_slot_table;
use fsmc_core::solver::{solve, Anchor, PartitionLevel, SlotSchedule};
use fsmc_dram::TimingParams;
use std::process::ExitCode;

fn main() -> ExitCode {
    let t = TimingParams::ddr3_1600();
    let naive = match solve(&t, Anchor::FixedPeriodicRas, PartitionLevel::None) {
        Ok(sol) => sol,
        Err(e) => {
            eprintln!("error: naive no-partitioning pipeline does not solve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("(a) Naive no-partitioning pipeline: l = {} cycles between consecutive", naive.l);
    println!(
        "    requests; interval for 8 threads = {} cycles; peak util {:.0}%\n",
        naive.interval_q(8),
        100.0 * naive.peak_data_utilization(&t)
    );
    let ta = match SlotSchedule::triple_alternation(&t, 8) {
        Ok(ta) => ta,
        Err(e) => {
            eprintln!("error: triple alternation does not solve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "(b) Triple alternation: l = {} cycles; guaranteed service interval = {}",
        ta.slot_pitch(),
        ta.q()
    );
    println!(
        "    cycles (up to 3 requests per thread per interval); peak util {:.0}%\n",
        100.0 * 4.0 / ta.slot_pitch() as f64
    );
    print!("{}", render_slot_table(&ta, 24));
    println!("\nConsecutive slots always touch different bank groups; the same group");
    println!("repeats only 3 slots (45 >= 43 cycles) later, so same-bank reuse is safe.");
    ExitCode::SUCCESS
}
