//! The device-generation matrix: every generation crossed with the
//! paper's main scheduling policies under one memory-intensive
//! workload. The paper's claim is a *framework* — re-derive the pipeline
//! from any JEDEC datasheet and the zero-leakage guarantee follows — so
//! this binary is the quantitative generalisation check that replaced
//! the old two-part `ddr4_pipelines` listing: FS no-partitioning, FS
//! rank- and bank-partitioning, temporal partitioning and FR-FCFS each
//! run on DDR3-1600, bank-grouped DDR4-2400, LPDDR4-3200 and HBM2.
//!
//! Reported per (generation, policy): sum of IPCs, data-bus dead time,
//! dummy-slot fraction, average read latency, and per-domain bandwidth
//! spread — plus, per generation, the FS-RP/TP-BP crossover ratio the
//! FS-vs-TP story turns on (FS closes the gap on parts whose bank-group
//! tCCD_S lets TP and FR-FCFS stream, and widens it where long tRC
//! starves turn-based policies).
//!
//! The grid runs concurrently on the experiment engine; output (console
//! and `results/device_matrix.csv`) is byte-identical at any
//! `FSMC_THREADS`, which CI exploits as a determinism gate.

use fsmc_bench::{run_cycles, save_result_or_warn, seed};
use fsmc_core::sched::SchedulerKind;
use fsmc_dram::DeviceGeneration;
use fsmc_sim::engine::{Engine, ExperimentJob, ExperimentPlan};
use fsmc_sim::runner::RunResult;
use fsmc_sim::SystemConfig;
use fsmc_workload::{BenchProfile, WorkloadMix};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Cache-line bytes per completed demand read, for bandwidth columns.
const LINE_BYTES: f64 = 64.0;

fn policies() -> [(&'static str, SchedulerKind); 5] {
    [
        ("fs-np", SchedulerKind::FsNoPartitionNaive),
        ("fs-rp", SchedulerKind::FsRankPartitioned),
        ("fs-bp", SchedulerKind::FsBankPartitioned),
        ("tp-bp", SchedulerKind::TpBankPartitioned { turn: 60 }),
        ("fr-fcfs", SchedulerKind::Baseline),
    ]
}

/// One matrix cell, reduced from a [`RunResult`].
struct Row {
    ipc_sum: f64,
    dead_time_pct: f64,
    dummy_pct: f64,
    avg_read_lat: f64,
    bw_total: f64,
    bw_min: f64,
    bw_max: f64,
}

fn reduce(r: &RunResult) -> Row {
    let s = &r.stats;
    let cycles = s.dram_cycles.max(1) as f64;
    let per_domain: Vec<f64> =
        s.mc.domains().iter().map(|d| d.reads_completed as f64 * LINE_BYTES / cycles).collect();
    Row {
        ipc_sum: s.ipc_sum(),
        dead_time_pct: 100.0 * (1.0 - s.bus_utilization),
        dummy_pct: 100.0 * s.mc.dummy_fraction(),
        avg_read_lat: s.avg_read_latency(),
        bw_total: per_domain.iter().sum(),
        bw_min: per_domain.iter().copied().fold(f64::INFINITY, f64::min),
        bw_max: per_domain.iter().copied().fold(0.0, f64::max),
    }
}

fn main() -> ExitCode {
    let (cycles, seed) = (run_cycles(), seed());
    let mix = WorkloadMix::rate(BenchProfile::mcf(), 8);
    let devices = DeviceGeneration::all();

    let mut plan = ExperimentPlan::new();
    for &device in &devices {
        for (_, kind) in policies() {
            plan.push(
                ExperimentJob::new(mix.clone(), kind, cycles, seed)
                    .with_config(SystemConfig::for_device(device, kind, 8)),
            );
        }
    }
    let results = Engine::from_env().run(&plan);

    let mut csv = String::from(
        "device,policy,ipc_sum,dead_time_pct,dummy_pct,avg_read_lat,\
         bw_total_bpc,bw_min_bpc,bw_max_bpc,fs_rp_over_tp\n",
    );
    println!("Device-generation matrix: mcf x8, {cycles} DRAM cycles, seed {seed}\n");
    println!(
        "{:<12} {:<8} {:>8} {:>10} {:>8} {:>9} {:>9} {:>17}",
        "device",
        "policy",
        "IPC sum",
        "dead time",
        "dummy",
        "read lat",
        "BW B/cyc",
        "BW/domain span"
    );
    let mut any_ok = false;
    let mut slots = results.iter();
    for &device in &devices {
        // Reduce the generation's five runs first: the crossover column
        // needs both the FS-RP and TP-BP cells of this generation.
        let rows: Vec<(&str, Option<Row>)> = policies()
            .iter()
            .map(|(name, _)| {
                let slot = slots.next().expect("every declared job yields a slot");
                (*name, slot.as_ref().ok().map(reduce))
            })
            .collect();
        let ipc_of = |wanted: &str| {
            rows.iter()
                .find(|(name, _)| *name == wanted)
                .and_then(|(_, r)| r.as_ref())
                .map(|r| r.ipc_sum)
        };
        let crossover = match (ipc_of("fs-rp"), ipc_of("tp-bp")) {
            (Some(fs), Some(tp)) if tp > 0.0 => Some(fs / tp),
            _ => None,
        };
        for (name, row) in &rows {
            match row {
                Some(r) => {
                    any_ok = true;
                    println!(
                        "{:<12} {:<8} {:>8.3} {:>9.1}% {:>7.1}% {:>9.1} {:>9.2} {:>8.2}..{:<7.2}",
                        device.cli_name(),
                        name,
                        r.ipc_sum,
                        r.dead_time_pct,
                        r.dummy_pct,
                        r.avg_read_lat,
                        r.bw_total,
                        r.bw_min,
                        r.bw_max
                    );
                    writeln!(
                        csv,
                        "{},{},{:.4},{:.2},{:.2},{:.1},{:.3},{:.3},{:.3},{}",
                        device.cli_name(),
                        name,
                        r.ipc_sum,
                        r.dead_time_pct,
                        r.dummy_pct,
                        r.avg_read_lat,
                        r.bw_total,
                        r.bw_min,
                        r.bw_max,
                        crossover.map(|c| format!("{c:.3}")).unwrap_or_default()
                    )
                    .unwrap();
                }
                None => {
                    println!("{:<12} {:<8} {:>8}", device.cli_name(), name, "failed");
                    writeln!(csv, "{},{},,,,,,,,", device.cli_name(), name).unwrap();
                }
            }
        }
        if let Some(c) = crossover {
            println!("{:<12} FS-RP / TP-BP crossover: {c:.2}x", device.cli_name());
        }
    }
    for slot in results.iter().filter_map(|r| r.as_ref().err()) {
        eprintln!("diagnostic: {slot}");
    }

    save_result_or_warn("device_matrix.csv", &csv);
    println!("\nFS stays certified and leak-free on every generation; what moves is");
    println!("only the performance gap to the insecure policies.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
