//! Generalisation check: the paper claims "a general framework for
//! constructing deterministic high-throughput memory pipelines". This
//! binary re-derives every pipeline for a DDR4-2400 part (JESD79-4, the
//! standard Table 1 cites) and certifies them — no DDR3-specific magic.

use fsmc_core::solver::{certify_uniform, solve, Anchor, PartitionLevel, SlotSchedule};
use fsmc_dram::TimingParams;

fn main() {
    for (name, t) in
        [("DDR3-1600", TimingParams::ddr3_1600()), ("DDR4-2400", TimingParams::ddr4_2400())]
    {
        println!("=== {name} ===");
        println!("{:<8} {:<22} {:>4} {:>8} {:>10}", "part.", "anchor", "l", "Q(8thr)", "peak util");
        for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
            for anchor in Anchor::all() {
                if let Ok(s) = solve(&t, anchor, level) {
                    println!(
                        "{:<8} {:<22} {:>4} {:>8} {:>9.1}%",
                        format!("{level:?}"),
                        format!("{anchor:?}"),
                        s.l,
                        s.interval_q(8),
                        100.0 * s.peak_data_utilization(&t)
                    );
                }
            }
        }
        // Certify the best rank pipeline for this part.
        let best = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
        let sched = SlotSchedule::uniform(best, 8);
        let r = certify_uniform(&sched, PartitionLevel::Rank, &t, 3);
        println!(
            "rank pipeline (l={}) certification: {} ({} cases)",
            best.l,
            if r.certified() { "CERTIFIED" } else { "FAILED" },
            r.cases
        );
        // Burst analysis (Section 3.1 "Improving bandwidth") per part.
        print!("burst speedups N=2..5:");
        for n in 2..=5 {
            if let Some(sp) = fsmc_core::solver::burst_speedup(&t, n) {
                print!(" {sp:.2}x");
            }
        }
        println!("\n");
    }
    println!("The framework re-derives conflict-free pipelines for any JEDEC part;");
    println!("only the timing-parameter table changes.");
}
