//! Generalisation check: the paper claims "a general framework for
//! constructing deterministic high-throughput memory pipelines". This
//! binary re-derives every pipeline for a DDR4-2400 part (JESD79-4, the
//! standard Table 1 cites) and certifies them — no DDR3-specific magic.
//! The two parts are analysed concurrently on the experiment engine and
//! their reports printed in declaration order.

use fsmc_core::solver::{certify_uniform, solve, Anchor, PartitionLevel, SlotSchedule};
use fsmc_dram::TimingParams;
use fsmc_sim::Engine;
use std::fmt::Write as _;
use std::process::ExitCode;

fn part_report(name: &str, t: &TimingParams) -> Result<String, String> {
    let mut out = String::new();
    writeln!(out, "=== {name} ===").unwrap();
    writeln!(
        out,
        "{:<8} {:<22} {:>4} {:>8} {:>10}",
        "part.", "anchor", "l", "Q(8thr)", "peak util"
    )
    .unwrap();
    for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
        for anchor in Anchor::all() {
            if let Ok(s) = solve(t, anchor, level) {
                writeln!(
                    out,
                    "{:<8} {:<22} {:>4} {:>8} {:>9.1}%",
                    format!("{level:?}"),
                    format!("{anchor:?}"),
                    s.l,
                    s.interval_q(8),
                    100.0 * s.peak_data_utilization(t)
                )
                .unwrap();
            }
        }
    }
    // Certify the best rank pipeline for this part.
    let best = solve(t, Anchor::FixedPeriodicData, PartitionLevel::Rank)
        .map_err(|e| format!("{name}: no rank pipeline: {e}"))?;
    let sched = SlotSchedule::uniform(best, 8);
    let r = certify_uniform(&sched, PartitionLevel::Rank, t, 3);
    writeln!(
        out,
        "rank pipeline (l={}) certification: {} ({} cases)",
        best.l,
        if r.certified() { "CERTIFIED" } else { "FAILED" },
        r.cases
    )
    .unwrap();
    // Burst analysis (Section 3.1 "Improving bandwidth") per part.
    write!(out, "burst speedups N=2..5:").unwrap();
    for n in 2..=5 {
        if let Some(sp) = fsmc_core::solver::burst_speedup(t, n) {
            write!(out, " {sp:.2}x").unwrap();
        }
    }
    writeln!(out, "\n").unwrap();
    Ok(out)
}

fn main() -> ExitCode {
    let parts =
        [("DDR3-1600", TimingParams::ddr3_1600()), ("DDR4-2400", TimingParams::ddr4_2400())];
    let reports = Engine::from_env().map(&parts, |_, (name, t)| part_report(name, t));
    let mut any_ok = false;
    for report in &reports {
        match report {
            Ok(text) => {
                any_ok = true;
                print!("{text}");
            }
            Err(e) => println!("  diagnostic: {e}"),
        }
    }
    println!("The framework re-derives conflict-free pipelines for any JEDEC part;");
    println!("only the timing-parameter table changes.");
    if any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
