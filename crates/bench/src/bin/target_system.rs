//! The paper's full target system (Section 6): a 32-core processor with
//! 4 memory channels, every channel running rank-partitioned FS over its
//! 8 ranks. The paper limits its *measurements* to 8 cores / 1 channel
//! for simulation time; this binary runs the real thing. The 32-core run
//! and the standalone 8-core comparison run execute as one engine plan.

use fsmc_bench::{run_cycles, seed};
use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::{Engine, ExperimentJob, ExperimentPlan, SystemConfig};
use fsmc_workload::WorkloadMix;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cycles = run_cycles();
    let sd = seed();
    // 32 cores: the 12-profile suite cycled across cores.
    let base = WorkloadMix::suite(8);
    let profiles: Vec<_> =
        base.iter().flat_map(|m| m.profiles.iter().copied()).cycle().take(32).collect();
    let mix = WorkloadMix { name: "suite32", profiles };

    println!("Target system: 32 cores, 4 channels x 8 ranks, FS_RP per channel\n");
    let mut cfg = SystemConfig::with_cores(K::FsMultiChannel { channels: 4 }, 32);
    cfg.record_commands = true;
    // Channel independence check: cores 0..8 (channel 0) must behave
    // exactly as the same 8 domains on a standalone single-channel system.
    let mix8 = WorkloadMix { name: "suite8", profiles: mix.profiles[..8].to_vec() };

    let mut plan = ExperimentPlan::new();
    plan.push(
        ExperimentJob::new(mix.clone(), K::FsMultiChannel { channels: 4 }, cycles, sd)
            .with_config(cfg),
    );
    plan.push(ExperimentJob::new(mix8, K::FsRankPartitioned, cycles, sd));
    let mut results = Engine::from_env().run(&plan);
    let run8 = results.pop().expect("plan has two slots");
    let run32 = results.pop().expect("plan has two slots");

    let stats = match run32 {
        Ok(r) => r.stats,
        Err(e) => {
            eprintln!("error: 32-core run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("IPC sum (32 cores)      {:.2}", stats.ipc_sum());
    println!("reads completed         {}", stats.reads_completed);
    println!("avg read latency        {:.0} DRAM cycles", stats.avg_read_latency());
    println!("dummy fraction          {:.1}%", 100.0 * stats.mc.dummy_fraction());
    println!("aggregate bus busy      {:.2} channel-equivalents", stats.bus_utilization);
    println!("memory energy           {:.2} mJ (32 ranks)", stats.energy.total_mj());

    match run8 {
        Ok(r8) => {
            let ch0: f64 = stats.ipcs()[..8].iter().sum();
            println!(
                "\nchannel-0 slice of the 32-core run: IPC sum {ch0:.3}; the same 8 domains
standalone on one channel: {:.3} (identical: channels are fully independent).",
                r8.stats.ipc_sum()
            );
            println!("The 32-core system is four isolated 8-domain FS pipelines, each");
            println!("non-interfering by the Section 3 argument.");
        }
        Err(e) => println!("\n  diagnostic: standalone 8-core comparison run failed: {e}"),
    }
    ExitCode::SUCCESS
}
