//! The full covert-channel capacity matrix: every attack protocol
//! against every scheduler on every device generation.
//!
//! This is the quantified version of the paper's motivation-and-claim
//! pair: the shared FR-FCFS baseline carries tens to hundreds of
//! kilobits per second through more than one encoding, temporal
//! partitioning leaves at most statistical residue, and every Fixed
//! Service variant measures zero capacity on every generation. Capacity
//! is *statistically gated* — a cell reports non-zero bits/sec only
//! when its decoder beats chance by three standard errors — so secure
//! rows are exact zeros, not small numbers hiding in rounding.
//!
//! Writes `results/covert_matrix.csv`. `FSMC_CYCLES` scales the window
//! count (default 300_000 cycles → 120 windows per cell; the CI smoke
//! run uses fewer). Output is byte-identical at any `FSMC_THREADS` and
//! with or without `FSMC_NO_FASTPATH`.

use fsmc_bench::save_result_or_warn;
use fsmc_core::sched::SchedulerKind as K;
use fsmc_dram::DeviceGeneration;
use fsmc_leak::{capacity_matrix, default_secret, render_csv, Protocol};
use fsmc_sim::Engine;

const WINDOW_CYCLES: u64 = 2_500;

fn main() {
    let schedulers = [
        K::Baseline,
        K::TpBankPartitioned { turn: 60 },
        K::TpFence { period: 300 },
        K::FsRankPartitioned,
        K::FsRankPartitionedPrefetch,
        K::FsBankPartitioned,
        K::FsReorderedBankPartitioned,
        K::FsNoPartitionNaive,
        K::FsTripleAlternation,
    ];
    // 300k cycles/cell by default (120 windows): the chance band at 24
    // windows is wider than some honestly-decoding baseline cells.
    let windows = (fsmc_sim::env::cycles(300_000) / WINDOW_CYCLES).max(8) as usize;
    println!(
        "Covert-channel capacity matrix: {} schedulers x 4 devices x 3 protocols,",
        schedulers.len()
    );
    println!("{windows} windows of {WINDOW_CYCLES} cycles per cell (FSMC_CYCLES scales this)\n");

    let cells = capacity_matrix(
        &Engine::from_env(),
        &DeviceGeneration::all(),
        &schedulers,
        &Protocol::all(),
        &default_secret(),
        WINDOW_CYCLES,
        windows,
    );
    for err in cells.iter().filter_map(|c| c.as_ref().err()) {
        eprintln!("warning: ill-posed cell skipped: {err}");
    }

    println!(
        "{:<12} {:<24} {:<14} {:>7} {:>7} {:>7} {:>12}",
        "device", "scheduler", "protocol", "windows", "BER", "MI", "bits/sec"
    );
    let mut last_device = None;
    for c in cells.iter().flatten() {
        if last_device.is_some() && last_device != Some(c.device) {
            println!();
        }
        last_device = Some(c.device);
        println!(
            "{:<12} {:<24} {:<14} {:>7} {:>7.3} {:>7.3} {:>12.0}",
            c.device.cli_name(),
            c.scheduler.label(),
            c.protocol.name(),
            c.windows_used,
            c.ber,
            c.mi_bits,
            c.capacity_bps
        );
    }

    // The headline claims, checked over the measured matrix itself.
    let decodable_baseline: Vec<&str> = cells
        .iter()
        .flatten()
        .filter(|c| c.scheduler == K::Baseline && c.capacity_bps > 0.0)
        .map(|c| c.protocol.name())
        .collect();
    let fs_leaks = cells
        .iter()
        .flatten()
        .filter(|c| {
            matches!(
                c.scheduler,
                K::FsRankPartitioned
                    | K::FsRankPartitionedPrefetch
                    | K::FsBankPartitioned
                    | K::FsReorderedBankPartitioned
                    | K::FsNoPartitionNaive
                    | K::FsTripleAlternation
            )
        })
        .filter(|c| c.capacity_bps > 0.0)
        .count();
    println!("\nFR-FCFS decodable protocols: {decodable_baseline:?}");
    println!("FS cells with non-zero capacity: {fs_leaks} (claim: 0)");

    save_result_or_warn("covert_matrix.csv", &render_csv(&cells));
}
