//! # fsmc-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion microbenchmarks (see `benches/`). This library holds the
//! shared experiment plumbing: run-length configuration, the workload
//! suite sweep, and plain-text/CSV table printing.
//!
//! Every binary accepts its run length from the `FSMC_CYCLES` environment
//! variable (DRAM cycles per simulation; default 60 000, which finishes
//! in seconds and already shows the paper's shapes — raise it for
//! tighter numbers) and the seed from `FSMC_SEED`.

use fsmc_core::sched::SchedulerKind;
use fsmc_sim::runner::{run_mix, run_mix_suite, RunResult};
use fsmc_workload::WorkloadMix;

/// Simulation length in DRAM cycles, from `FSMC_CYCLES` (default 60 000).
pub fn run_cycles() -> u64 {
    std::env::var("FSMC_CYCLES").ok().and_then(|v| v.parse().ok()).unwrap_or(60_000)
}

/// Workload seed, from `FSMC_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("FSMC_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42)
}

/// A results table: one row per workload, one column per scheduler.
#[derive(Debug, Clone)]
pub struct SuiteTable {
    pub columns: Vec<SchedulerKind>,
    /// (workload name, value per column).
    pub rows: Vec<(&'static str, Vec<f64>)>,
}

impl SuiteTable {
    /// Arithmetic mean across workloads per column (the paper's AM bars).
    pub fn arithmetic_means(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect()
    }

    /// Renders the table.
    pub fn render(&self, metric: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "workload"));
        for c in &self.columns {
            out.push_str(&format!(" {:>18}", c.label()));
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(&format!("{name:<12}"));
            for v in vals {
                out.push_str(&format!(" {v:>18.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<12}", "AM"));
        for m in self.arithmetic_means() {
            out.push_str(&format!(" {m:>18.3}"));
        }
        out.push('\n');
        out.push_str(&format!("({metric})\n"));
        out
    }

    /// CSV form for downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.label());
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(name);
            for v in vals {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the 12-workload suite under each scheduler, reporting the paper's
/// sum-of-weighted-IPC metric (normalised per workload against the
/// non-secure baseline with identical seeds).
pub fn weighted_ipc_suite(kinds: &[SchedulerKind], cycles: u64, seed: u64) -> SuiteTable {
    let suite = WorkloadMix::suite(8);
    let mut rows = Vec::with_capacity(suite.len());
    for mix in &suite {
        let (base, runs) = run_mix_suite(mix, kinds, cycles, seed).expect_ok();
        let vals = runs.iter().map(|r| r.weighted_ipc_vs(&base)).collect();
        rows.push((mix.name, vals));
    }
    SuiteTable { columns: kinds.to_vec(), rows }
}

/// Runs the suite and returns raw [`RunResult`]s per workload per kind
/// (the baseline result is returned separately per row).
pub fn suite_results(
    kinds: &[SchedulerKind],
    cycles: u64,
    seed: u64,
) -> Vec<(&'static str, RunResult, Vec<RunResult>)> {
    WorkloadMix::suite(8)
        .iter()
        .map(|mix| {
            let (base, runs) = run_mix_suite(mix, kinds, cycles, seed).expect_ok();
            (mix.name, base, runs)
        })
        .collect()
}

/// Convenience single run; panics with the structured error on failure
/// (the figure binaries run known-good configurations).
pub fn single(mix: &WorkloadMix, kind: SchedulerKind, cycles: u64, seed: u64) -> RunResult {
    run_mix(mix, kind, cycles, seed).unwrap_or_else(|e| panic!("{}: {kind} failed: {e}", mix.name))
}

/// Writes an experiment artefact into `results/<name>` (creating the
/// directory), so every figure binary leaves a plotting-ready file
/// behind. Failures are reported but not fatal — the console output is
/// the primary artefact.
pub fn save_result(name: &str, contents: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_means_and_csv() {
        let t = SuiteTable {
            columns: vec![SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned],
            rows: vec![("a", vec![8.0, 6.0]), ("b", vec![8.0, 4.0])],
        };
        let m = t.arithmetic_means();
        assert!((m[0] - 8.0).abs() < 1e-12 && (m[1] - 5.0).abs() < 1e-12);
        let csv = t.to_csv();
        assert!(csv.starts_with("workload,Baseline,FS_RP"));
        assert!(csv.contains("a,8.0000,6.0000"));
        let txt = t.render("weighted IPC");
        assert!(txt.contains("AM"));
    }

    #[test]
    fn env_defaults() {
        assert!(run_cycles() >= 1000);
        let _ = seed();
    }
}
