//! # fsmc-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! Criterion microbenchmarks (see `benches/`). This library holds the
//! shared experiment plumbing: run-length configuration, the engine-
//! driven workload suite sweep, and plain-text/CSV table printing.
//!
//! Every binary accepts its run length from the `FSMC_CYCLES` environment
//! variable (DRAM cycles per simulation; default 60 000, which finishes
//! in seconds and already shows the paper's shapes — raise it for
//! tighter numbers), the seed from `FSMC_SEED`, and its worker-pool
//! width from `FSMC_THREADS` (default: available parallelism). Output
//! is byte-identical at any thread count. Artefacts land in `results/`
//! or `$FSMC_RESULTS_DIR`.

use fsmc_core::sched::SchedulerKind;
use fsmc_obs::MetricsReport;
use fsmc_sim::engine::{Engine, ExperimentJob, ExperimentPlan};
use fsmc_sim::runner::{RunResult, SuiteResult};
use fsmc_sim::FaultPlan;
use fsmc_workload::WorkloadMix;
use std::path::PathBuf;
use std::process::ExitCode;

pub mod throughput;

/// Runs a plan on the in-process engine — or, when `FSMC_SERVE` names a
/// live experiment-service socket, through the daemon's worker-process
/// pool and content-addressed result cache
/// ([`fsmc_serve::run_plan_remote`]). Slot order and result bytes are
/// identical either way; jobs the service cannot express (faults,
/// metrics, custom controllers) and every job when the daemon is down
/// run locally.
pub fn run_plan(
    engine: &Engine,
    plan: &ExperimentPlan,
) -> Vec<Result<RunResult, fsmc_sim::FsmcError>> {
    match fsmc_sim::env::serve_socket() {
        Some(socket) => fsmc_serve::run_plan_remote(&socket, plan),
        None => engine.run(plan),
    }
}

/// Simulation length in DRAM cycles, from `FSMC_CYCLES` (default 60 000).
/// A malformed value is reported and replaced by the default.
pub fn run_cycles() -> u64 {
    fsmc_sim::env::cycles(60_000)
}

/// Workload seed, from `FSMC_SEED` (default 42). A malformed value is
/// reported and replaced by the default.
pub fn seed() -> u64 {
    fsmc_sim::env::seed(42)
}

/// One table cell: the metric, or the diagnostic of the run that failed
/// to produce it.
#[derive(Debug, Clone)]
pub enum Cell {
    Value(f64),
    Failed(String),
}

impl Cell {
    pub fn value(&self) -> Option<f64> {
        match self {
            Cell::Value(v) => Some(*v),
            Cell::Failed(_) => None,
        }
    }

    pub fn diagnostic(&self) -> Option<&str> {
        match self {
            Cell::Value(_) => None,
            Cell::Failed(d) => Some(d),
        }
    }
}

/// A results table: one row per workload, one column per scheduler.
/// Failed runs stay in their cell as diagnostics instead of killing the
/// figure.
#[derive(Debug, Clone)]
pub struct SuiteTable {
    pub columns: Vec<SchedulerKind>,
    /// (workload name, cell per column).
    pub rows: Vec<(&'static str, Vec<Cell>)>,
}

impl SuiteTable {
    /// A table where every run succeeded (tests, derived tables).
    pub fn from_values(columns: Vec<SchedulerKind>, rows: Vec<(&'static str, Vec<f64>)>) -> Self {
        SuiteTable {
            columns,
            rows: rows
                .into_iter()
                .map(|(name, vals)| (name, vals.into_iter().map(Cell::Value).collect()))
                .collect(),
        }
    }

    /// Arithmetic mean across workloads per column (the paper's AM bars),
    /// taken over the cells that produced a value; a column with no
    /// surviving cell yields NaN.
    pub fn arithmetic_means(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| {
                let vals: Vec<f64> =
                    self.rows.iter().filter_map(|(_, cells)| cells[c].value()).collect();
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            })
            .collect()
    }

    /// Every failed cell as `(workload, column scheduler, diagnostic)`.
    pub fn failures(&self) -> Vec<(&'static str, SchedulerKind, &str)> {
        let mut out = Vec::new();
        for (name, cells) in &self.rows {
            for (c, cell) in cells.iter().enumerate() {
                if let Some(d) = cell.diagnostic() {
                    out.push((*name, self.columns[c], d));
                }
            }
        }
        out
    }

    /// True when no cell produced a value.
    pub fn all_failed(&self) -> bool {
        self.rows.iter().all(|(_, cells)| cells.iter().all(|c| c.value().is_none()))
    }

    /// The figure binaries' exit policy: nonzero only if *every* run
    /// failed — partial figures are still figures.
    pub fn exit_code(&self) -> ExitCode {
        if !self.rows.is_empty() && self.all_failed() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }

    /// Renders the table; failed cells print `FAILED` and their
    /// diagnostics are listed below the table.
    pub fn render(&self, metric: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "workload"));
        for c in &self.columns {
            out.push_str(&format!(" {:>18}", c.label()));
        }
        out.push('\n');
        for (name, cells) in &self.rows {
            out.push_str(&format!("{name:<12}"));
            for cell in cells {
                match cell {
                    Cell::Value(v) => out.push_str(&format!(" {v:>18.3}")),
                    Cell::Failed(_) => out.push_str(&format!(" {:>18}", "FAILED")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<12}", "AM"));
        for m in self.arithmetic_means() {
            out.push_str(&format!(" {m:>18.3}"));
        }
        out.push('\n');
        out.push_str(&format!("({metric})\n"));
        let failures = self.failures();
        if !failures.is_empty() {
            out.push_str("diagnostics:\n");
            for (name, kind, diag) in failures {
                out.push_str(&format!("  {name}/{}: {diag}\n", kind.label()));
            }
        }
        out
    }

    /// CSV form for downstream plotting; failed cells emit `error`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.label());
        }
        out.push('\n');
        for (name, cells) in &self.rows {
            out.push_str(name);
            for cell in cells {
                match cell {
                    Cell::Value(v) => out.push_str(&format!(",{v:.4}")),
                    Cell::Failed(_) => out.push_str(",error"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Assembles the weighted-IPC table from engine slots: one baseline and
/// `kinds.len()` policy runs per mix, in declaration order.
fn weighted_table(
    kinds: &[SchedulerKind],
    mixes: &[WorkloadMix],
    results: Vec<Result<RunResult, fsmc_sim::FsmcError>>,
) -> SuiteTable {
    let mut slots = results.into_iter();
    let mut rows = Vec::with_capacity(mixes.len());
    for mix in mixes {
        let base = slots.next().expect("baseline slot declared");
        let cells = kinds
            .iter()
            .map(|_| {
                let run = slots.next().expect("policy slot declared");
                match (&base, run) {
                    (Ok(b), Ok(r)) => Cell::Value(r.weighted_ipc_vs(b)),
                    (Err(e), _) => Cell::Failed(format!("baseline failed: {e}")),
                    (Ok(_), Err(e)) => Cell::Failed(e.to_string()),
                }
            })
            .collect();
        rows.push((mix.name, cells));
    }
    SuiteTable { columns: kinds.to_vec(), rows }
}

/// [`weighted_ipc_suite`] over explicit mixes, an explicit [`Engine`],
/// and optional per-scheduler fault plans — the fully parameterised form
/// the determinism and failure-isolation tests drive directly.
pub fn weighted_ipc_suite_with(
    engine: &Engine,
    mixes: &[WorkloadMix],
    kinds: &[SchedulerKind],
    cycles: u64,
    seed: u64,
    faults: &[(SchedulerKind, FaultPlan)],
) -> SuiteTable {
    let plan_for = |k: SchedulerKind| {
        faults.iter().find(|(fk, _)| *fk == k).map(|(_, p)| p.clone()).unwrap_or_default()
    };
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        plan.push(ExperimentJob::new(mix.clone(), SchedulerKind::Baseline, cycles, seed));
        for &k in kinds {
            plan.push(ExperimentJob::new(mix.clone(), k, cycles, seed).with_faults(plan_for(k)));
        }
    }
    weighted_table(kinds, mixes, run_plan(engine, &plan))
}

/// One `--metrics` row: the observability report of a single
/// `(workload, scheduler)` run, including the baseline runs.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    pub mix: &'static str,
    pub scheduler: SchedulerKind,
    pub report: MetricsReport,
}

/// Renders `--metrics` rows as CSV: identity columns plus the
/// [`MetricsReport`] histogram columns appended per
/// [`MetricsReport::csv_header`].
pub fn metrics_csv(rows: &[MetricsRow], domains: usize) -> String {
    let mut out = format!("workload,scheduler,{}\n", MetricsReport::csv_header(domains));
    for r in rows {
        out.push_str(&format!("{},{},{}\n", r.mix, r.scheduler.label(), r.report.csv_cells()));
    }
    out
}

/// [`weighted_ipc_suite_with`] with per-run observability metrics
/// armed: every job (baselines included) collects per-domain latency
/// histograms and row-locality counters, returned as one
/// [`MetricsRow`] per completed run in declaration (slot) order — so
/// the rows, like the table, are byte-identical at any `FSMC_THREADS`.
pub fn weighted_ipc_suite_metrics(
    engine: &Engine,
    mixes: &[WorkloadMix],
    kinds: &[SchedulerKind],
    cycles: u64,
    seed: u64,
) -> (SuiteTable, Vec<MetricsRow>) {
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        plan.push(
            ExperimentJob::new(mix.clone(), SchedulerKind::Baseline, cycles, seed).with_metrics(),
        );
        for &k in kinds {
            plan.push(ExperimentJob::new(mix.clone(), k, cycles, seed).with_metrics());
        }
    }
    let results = engine.run(&plan);
    let mut rows = Vec::new();
    {
        let mut slots = results.iter();
        for mix in mixes {
            let mut take = |scheduler: SchedulerKind| {
                if let Some(Ok(r)) = slots.next() {
                    if let Some(report) = &r.metrics {
                        rows.push(MetricsRow { mix: mix.name, scheduler, report: report.clone() });
                    }
                }
            };
            take(SchedulerKind::Baseline);
            for &k in kinds {
                take(k);
            }
        }
    }
    (weighted_table(kinds, mixes, results), rows)
}

/// Runs the 12-workload suite under each scheduler on the experiment
/// engine (`FSMC_THREADS` workers, one memoized trace per stream),
/// reporting the paper's sum-of-weighted-IPC metric (normalised per
/// workload against the non-secure baseline with identical seeds). A
/// failed run becomes a diagnostic cell; the other columns survive.
pub fn weighted_ipc_suite(kinds: &[SchedulerKind], cycles: u64, seed: u64) -> SuiteTable {
    weighted_ipc_suite_with(&Engine::from_env(), &WorkloadMix::suite(8), kinds, cycles, seed, &[])
}

/// Runs the suite on the engine and returns the raw per-workload
/// [`SuiteResult`]s (baseline plus one fallible slot per kind), for
/// figures that need full [`RunResult`] statistics rather than the
/// weighted-IPC metric.
pub fn suite_results(kinds: &[SchedulerKind], cycles: u64, seed: u64) -> Vec<SuiteResult> {
    let mixes = WorkloadMix::suite(8);
    let mut plan = ExperimentPlan::new();
    for mix in &mixes {
        plan.push(ExperimentJob::new(mix.clone(), SchedulerKind::Baseline, cycles, seed));
        for &k in kinds {
            plan.push(ExperimentJob::new(mix.clone(), k, cycles, seed));
        }
    }
    let mut slots = Engine::from_env().run(&plan).into_iter();
    mixes
        .iter()
        .map(|mix| SuiteResult {
            mix_name: mix.name,
            baseline: slots.next().expect("baseline slot declared"),
            runs: kinds.iter().map(|&k| (k, slots.next().expect("policy slot declared"))).collect(),
        })
        .collect()
}

/// The exit policy for binaries built on [`suite_results`]: nonzero only
/// if every run (baselines included) failed.
pub fn suite_exit_code(rows: &[SuiteResult]) -> ExitCode {
    let any_ok =
        rows.iter().any(|r| r.baseline.is_ok() || r.runs.iter().any(|(_, run)| run.is_ok()));
    if rows.is_empty() || any_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Convenience single run; panics with the structured error on failure
/// (the figure binaries run known-good configurations).
pub fn single(mix: &WorkloadMix, kind: SchedulerKind, cycles: u64, seed: u64) -> RunResult {
    fsmc_sim::runner::run_mix(mix, kind, cycles, seed)
        .unwrap_or_else(|e| panic!("{}: {kind} failed: {e}", mix.name))
}

/// Writes an experiment artefact into `results/<name>` — or
/// `$FSMC_RESULTS_DIR/<name>` — creating the directory. The write is
/// durable and atomic ([`fsmc_serve::write_durable`]: unique temp file,
/// fsync, rename, fsync of the directory), so concurrent figure
/// binaries never interleave partial contents and a crash mid-write
/// never leaves a torn CSV. Returns the final path, or a typed
/// [`fsmc_serve::WriteError`] naming the path and the stage that failed
/// (e.g. an unwritable `FSMC_RESULTS_DIR`); callers treat that as a
/// warning — the console output is the primary artefact.
pub fn save_result(name: &str, contents: &str) -> Result<PathBuf, fsmc_serve::WriteError> {
    let dir = fsmc_sim::env::results_dir().unwrap_or_else(|| PathBuf::from("results"));
    let path = dir.join(name);
    fsmc_serve::write_durable(&path, contents.as_bytes())?;
    Ok(path)
}

/// [`save_result`], reporting the outcome on stderr instead of
/// returning it — the figure binaries' one-liner.
pub fn save_result_or_warn(name: &str, contents: &str) {
    match save_result(name, contents) {
        Ok(path) => eprintln!("(wrote {})", path.display()),
        Err(e) => eprintln!("warning: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_sim::faults::{FaultKind, TimingField};
    use fsmc_workload::BenchProfile;

    #[test]
    fn table_means_and_csv() {
        let t = SuiteTable::from_values(
            vec![SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned],
            vec![("a", vec![8.0, 6.0]), ("b", vec![8.0, 4.0])],
        );
        let m = t.arithmetic_means();
        assert!((m[0] - 8.0).abs() < 1e-12 && (m[1] - 5.0).abs() < 1e-12);
        let csv = t.to_csv();
        assert!(csv.starts_with("workload,Baseline,FS_RP"));
        assert!(csv.contains("a,8.0000,6.0000"));
        let txt = t.render("weighted IPC");
        assert!(txt.contains("AM"));
        assert!(matches!(t.exit_code(), ExitCode::SUCCESS));
    }

    #[test]
    fn failed_cells_render_as_diagnostics_not_values() {
        let t = SuiteTable {
            columns: vec![SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned],
            rows: vec![
                ("a", vec![Cell::Value(8.0), Cell::Failed("no feasible pitch".into())]),
                ("b", vec![Cell::Value(6.0), Cell::Failed("no feasible pitch".into())]),
            ],
        };
        let m = t.arithmetic_means();
        assert!((m[0] - 7.0).abs() < 1e-12);
        assert!(m[1].is_nan());
        let txt = t.render("x");
        assert!(txt.contains("FAILED"));
        assert!(txt.contains("a/FS_RP: no feasible pitch"));
        assert!(t.to_csv().contains("a,8.0000,error"));
        assert_eq!(t.failures().len(), 2);
        // One column survived: the figure is partial, not dead.
        assert!(!t.all_failed());
        assert!(matches!(t.exit_code(), ExitCode::SUCCESS));
    }

    #[test]
    fn all_failed_table_exits_nonzero() {
        let t = SuiteTable {
            columns: vec![SchedulerKind::FsRankPartitioned],
            rows: vec![("a", vec![Cell::Failed("x".into())])],
        };
        assert!(t.all_failed());
        assert!(matches!(t.exit_code(), ExitCode::FAILURE));
    }

    #[test]
    fn env_defaults() {
        assert!(run_cycles() >= 1000);
        let _ = seed();
    }

    /// Regression for the pre-engine `expect_ok` behaviour: a suite
    /// containing a deliberately infeasible configuration must still
    /// produce every other column instead of aborting the figure.
    #[test]
    fn infeasible_policy_leaves_other_columns_standing() {
        let mixes =
            [WorkloadMix::rate(BenchProfile::astar(), 8), WorkloadMix::rate(BenchProfile::cg(), 8)];
        let kinds =
            [SchedulerKind::FsRankPartitioned, SchedulerKind::TpBankPartitioned { turn: 60 }];
        // +600 cycles of rank-to-rank turnaround exceeds even the
        // conservative pipeline's search bound: FS construction fails
        // with a solver error. TP ignores the FS pipeline entirely.
        let infeasible = FaultPlan::new(5)
            .with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: 600 });
        let table = weighted_ipc_suite_with(
            &Engine::with_threads(2),
            &mixes,
            &kinds,
            4_000,
            42,
            &[(SchedulerKind::FsRankPartitioned, infeasible)],
        );
        for (name, cells) in &table.rows {
            assert!(cells[0].value().is_none(), "{name}: FS column should have failed");
            let tp = cells[1].value().unwrap_or_else(|| panic!("{name}: TP column died too"));
            assert!(tp > 0.0);
        }
        assert!(!table.all_failed());
        assert!(matches!(table.exit_code(), ExitCode::SUCCESS));
        let txt = table.render("weighted IPC");
        assert!(txt.contains("FAILED") && txt.contains("diagnostics:"), "{txt}");
    }
}
