//! The paper's motivating side channel (Section 2.2, after Wang et al.):
//! an RSA victim's square-and-multiply loop touches memory harder while
//! processing the 1-bits of its private key. A co-scheduled attacker
//! watches nothing but *its own* read latencies — and recovers the key.
//!
//! Run with: `cargo run --release --example rsa_key_leak`

use fsmc::core::sched::SchedulerKind;
use fsmc::security::run_covert_channel;

fn main() {
    // The victim's 48-bit private key. Each 1-bit triggers the extra
    // "multiply" pass with its memory traffic; 0-bits are compute-only.
    let key: Vec<bool> = (0..48u64).map(|i| (0xB1E55EDC0FFEE_u64 >> i) & 1 == 1).collect();
    let weight = key.iter().filter(|&&b| b).count();
    println!("victim private key: {} bits, Hamming weight {weight}", key.len());
    println!("attacker: fixed-rate probe on another core, observing only its own latencies\n");

    for kind in [SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned] {
        // The "covert channel" machinery doubles as the side channel: the
        // victim is an unwitting sender, modulated by its own key.
        let r = run_covert_channel(kind, &key, 2_500, 260).expect("well-posed estimate");
        let recovered = 1.0 - r.ber;
        println!("--- {kind} ---");
        println!("  key bits recovered      {:.1}%", 100.0 * recovered);
        println!("  mutual information      {:.3} bits/observation", r.mutual_information_bits);
        if recovered > 0.7 {
            println!("  => the attacker reads most key bits from memory contention\n");
        } else {
            println!("  => observations are key-independent; the search space is untouched\n");
        }
    }
    println!("The paper: \"the victim RSA's memory accesses are correlated with the");
    println!("number of 1s in its private key. The attacker can gauge the victim");
    println!("thread's memory traffic ... and thus narrow the search space.\" FS");
    println!("removes the correlation entirely.");
}
