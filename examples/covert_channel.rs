//! An end-to-end covert channel: a firewalled sender leaks a secret to a
//! colluding receiver purely through memory contention — until FS closes
//! the channel.
//!
//! Run with: `cargo run --release --example covert_channel`

use fsmc::core::sched::SchedulerKind;
use fsmc::security::{binary_channel_capacity, run_covert_channel};

fn main() {
    // The secret byte the sender tries to exfiltrate.
    let secret = [true, false, true, true, false, false, true, false];
    println!("Sender (domain 1) modulates memory intensity with the secret bits;");
    println!("receiver (domain 0) watches its own read latencies.\n");
    for kind in [SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned] {
        let r = run_covert_channel(kind, &secret, 2_500, 100).expect("well-posed estimate");
        println!("--- {kind} ---");
        println!("  usable windows          {}", r.windows.len());
        println!("  bit error rate          {:.3}", r.ber);
        println!("  mutual information      {:.3} bits/window", r.mutual_information_bits);
        println!("  est. channel capacity   {:.0} bits/second", r.capacity_bps);
        println!(
            "  (BSC capacity at this BER: {:.3} bits/symbol)\n",
            binary_channel_capacity(r.ber)
        );
    }
    println!("Context: Wu et al. built ~100 bps channels on EC2; Hunger et al. exceed");
    println!("100 Kbps with synchronised endpoints. FS makes the receiver's latencies");
    println!("independent of the sender, so the decoded stream is pure noise.");
}
