//! The side-channel experiment of Figure 4: an attacker (mcf) measures
//! its own progress to infer whether its co-runners are memory-intensive.
//!
//! Run with: `cargo run --release --example side_channel_attack`

use fsmc::core::sched::SchedulerKind;
use fsmc::security::noninterference::{check_noninterference, execution_profile, CoRunners};

fn main() {
    println!("An attacker measures the time to retire each 5k-instruction block.");
    println!("If the timing depends on co-runners, the memory controller leaks.\n");

    for kind in [SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned] {
        let report = check_noninterference(kind, 5_000, 12);
        println!("--- {kind} ---");
        println!(
            "attacker finish with idle co-runners:       {:>10} CPU cycles",
            report.idle_profile.boundaries.last().copied().unwrap_or(0)
        );
        println!(
            "attacker finish with flooding co-runners:   {:>10} CPU cycles",
            report.intensive_profile.boundaries.last().copied().unwrap_or(0)
        );
        println!(
            "worst-case divergence:                      {:>10} CPU cycles",
            report.max_divergence()
        );
        if report.is_non_interfering() {
            println!("=> ZERO leakage: the attacker cannot tell the environments apart.\n");
        } else {
            println!("=> LEAKS: the attacker can read its co-runners' memory intensity.\n");
        }
    }

    // The attack as a one-bit decision: is my neighbour using memory?
    let probe = execution_profile(SchedulerKind::Baseline, CoRunners::MemoryIntensive, 5_000, 4);
    let quiet = execution_profile(SchedulerKind::Baseline, CoRunners::Idle, 5_000, 4);
    let slowdown = quiet.final_slowdown(&probe);
    println!("On the baseline the attacker runs {slowdown:.1}x slower next to a flooder —");
    println!("a trivially decodable signal. Under FS the ratio is exactly 1.0.");
}
