//! Explore the pipeline mathematics: solve for the minimum slot pitch
//! under different timing parameters and render the resulting pipelines.
//!
//! Run with: `cargo run --release --example pipeline_explorer`

use fsmc::core::solver::diagram::render_uniform;
use fsmc::core::solver::{solve, solve_best, Anchor, PartitionLevel, SlotSchedule};
use fsmc::dram::TimingParams;

fn main() {
    let ddr3 = TimingParams::ddr3_1600();
    println!("DDR3-1600 (the paper's part):");
    table(&ddr3);

    // A hypothetical faster part: tighter turnarounds shrink the pitch.
    let fast = TimingParams { t_rtrs: 1, t_wtr: 4, ..ddr3 };
    println!("\nHypothetical low-turnaround part (tRTRS=1, tWTR=4):");
    table(&fast);

    // Render the paper's Figure-1 pipeline for an all-write interval —
    // the math guarantees conflict freedom for *any* mix.
    let sol = solve_best(&ddr3, PartitionLevel::Rank).unwrap();
    let sched = SlotSchedule::uniform(sol, 8);
    println!("\nAll-writes interval on the rank-partitioned pipeline (l = {}):\n", sol.l);
    print!("{}", render_uniform(&sched, &ddr3, &[true], 8));
}

fn table(t: &TimingParams) {
    println!("{:<8} {:<22} {:>4} {:>9}", "part.", "anchor", "l", "peak util");
    for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
        for anchor in Anchor::all() {
            if let Ok(s) = solve(t, anchor, level) {
                println!(
                    "{:<8} {:<22} {:>4} {:>8.1}%",
                    format!("{level:?}"),
                    format!("{anchor:?}"),
                    s.l,
                    100.0 * s.peak_data_utilization(t)
                );
            }
        }
    }
}
