//! Export a synthetic workload as a USIMM-format trace file, reload it,
//! and drive the secure controller with the replay — the workflow for
//! users who bring their own captured traces.
//!
//! Run with: `cargo run --release --example trace_replay`

use fsmc::core::sched::SchedulerKind;
use fsmc::cpu::trace::TraceSource;
use fsmc::cpu::trace_file::{record_trace, FileTrace};
use fsmc::sim::{System, SystemConfig};
use fsmc::workload::{BenchProfile, SyntheticTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("fsmc_milc_trace.txt");

    // 1. Record 20k memory operations of a milc-like workload.
    let mut source = SyntheticTrace::new(BenchProfile::milc(), 7);
    record_trace(&mut source, 20_000, &path)?;
    let size = std::fs::metadata(&path)?.len();
    println!("recorded {} ({} KiB, USIMM text format)", path.display(), size / 1024);

    // 2. Reload and inspect.
    let trace = FileTrace::load(&path)?;
    println!("loaded {} memory operations; first lines:", trace.len());
    for line in std::fs::read_to_string(&path)?.lines().take(4) {
        println!("    {line}");
    }

    // 3. Drive the paper's secure controller with eight replayed copies.
    let cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
    let traces: Vec<Box<dyn TraceSource>> =
        (0..cfg.cores).map(|_| Box::new(trace.clone()) as Box<dyn TraceSource>).collect();
    let mut sys = System::new(&cfg, traces);
    let stats = sys.run_cycles(40_000);
    println!(
        "\nreplayed under FS_RP: IPC sum {:.2}, {} reads, avg latency {:.0} cycles",
        stats.ipc_sum(),
        stats.reads_completed,
        stats.avg_read_latency()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
