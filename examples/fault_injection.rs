//! Fault injection and graceful degradation, end to end.
//!
//! Four experiments on the rank-partitioned FS controller:
//!
//! 1. a suite where two of three policies are deliberately faulted —
//!    the clean runs complete and the faulted ones return structured
//!    errors in their own slots;
//! 2. a single bounded command slip — the controller repairs itself
//!    onto the certified conservative pipeline and keeps serving;
//! 3. unbounded command drops — the cores starve and the watchdog
//!    diagnoses the stall (domain, rank, bank, oldest transaction);
//! 4. a timing perturbation no pipeline can absorb — construction
//!    fails with a typed solver error instead of a panic.
//!
//! Run with `cargo run --release --example fault_injection`.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{
    run_mix_faulted, run_mix_suite_faulted, FaultKind, FaultPlan, FsmcError, TimingField,
};
use fsmc::workload::{BenchProfile, WorkloadMix};

fn main() {
    let mix = WorkloadMix::rate(BenchProfile::milc(), 8);

    println!("=== 1. suite survives faulted members ===");
    let kinds = [K::FsRankPartitioned, K::FsBankPartitioned, K::FsReorderedBankPartitioned];
    let faults = [
        (K::FsBankPartitioned, FaultPlan::new(1).with(FaultKind::StretchRefresh { factor: 40 })),
        (
            K::FsReorderedBankPartitioned,
            FaultPlan::new(2).with(FaultKind::CorruptTrace { core: 0, period: 3 }),
        ),
    ];
    let suite = run_mix_suite_faulted(&mix, &kinds, 15_000, 42, &faults);
    let base = suite.baseline.as_ref().expect("clean baseline");
    println!("  baseline          ok   ({} reads)", base.stats.reads_completed);
    for (kind, run) in &suite.runs {
        let name = kind.to_string();
        match run {
            Ok(r) => println!("  {name:<17} ok   ({} reads)", r.stats.reads_completed),
            Err(e) => println!("  {name:<17} FAIL {e}"),
        }
    }

    println!("\n=== 2. bounded fault degrades, run completes ===");
    let plan = FaultPlan::new(3).with(FaultKind::DelayCommand { period: 50, delay: 5, max: 1 });
    let r = run_mix_faulted(&mix, K::FsRankPartitioned, 25_000, 42, &plan)
        .expect("bounded fault must not kill the run");
    println!(
        "  degraded={} injected={} timing_faults={} fallbacks={} reads={}",
        r.stats.mc.degraded,
        r.stats.mc.injected_faults,
        r.stats.mc.timing_faults,
        r.stats.mc.solver_fallbacks,
        r.stats.reads_completed
    );

    println!("\n=== 3. unbounded drops wake the watchdog ===");
    let mix_lq = WorkloadMix::rate(BenchProfile::libquantum(), 8);
    let plan = FaultPlan::new(4).with(FaultKind::DropCommand { period: 3, max: 0 });
    match run_mix_faulted(&mix_lq, K::FsRankPartitioned, 150_000, 42, &plan) {
        Err(FsmcError::Watchdog(w)) => println!("  {w}"),
        other => println!("  unexpected: {other:?}"),
    }

    println!("\n=== 4. infeasible timing is a typed solve error ===");
    let plan =
        FaultPlan::new(5).with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: 600 });
    match run_mix_faulted(&mix, K::FsRankPartitioned, 5_000, 42, &plan) {
        Err(e @ FsmcError::Solve(_)) => println!("  {e}"),
        other => println!("  unexpected: {other:?}"),
    }
}
