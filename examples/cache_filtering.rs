//! Demonstrates the cache substrate: a raw (pre-cache) address stream is
//! filtered through the paper's L1/L2 hierarchy to produce the post-LLC
//! miss stream that actually reaches the memory controller.
//!
//! Run with: `cargo run --release --example cache_filtering`

use fsmc::cpu::cache::Hierarchy;
use fsmc::cpu::trace::{MemOp, TraceOp, TraceSource};
use fsmc::dram::geometry::LineAddr;

/// A toy program: streams over a 16 MB array while hammering a hot 16 KB
/// region — classic "streaming + working set" behaviour.
struct RawProgram {
    i: u64,
}

impl RawProgram {
    fn next_access(&mut self) -> (LineAddr, bool) {
        self.i += 1;
        if self.i.is_multiple_of(4) {
            (LineAddr(self.i % 256), false) // hot region: 256 lines = 16 KB
        } else {
            (LineAddr(4096 + self.i % (1 << 18)), self.i % 16 == 1) // stream
        }
    }
}

/// Adapts the raw program into a post-LLC [`TraceSource`]: only cache
/// misses (and dirty writebacks) become memory operations.
struct FilteredTrace {
    program: RawProgram,
    hierarchy: Hierarchy,
    pending_writeback: Option<LineAddr>,
}

impl TraceSource for FilteredTrace {
    fn next_op(&mut self) -> TraceOp {
        if let Some(wb) = self.pending_writeback.take() {
            return TraceOp::with_mem(0, MemOp { addr: wb, is_write: true });
        }
        let mut nonmem = 0u32;
        loop {
            let (addr, is_write) = self.program.next_access();
            let r = self.hierarchy.access(addr, is_write);
            nonmem += 2; // a couple of ALU ops per access
            if let Some(wb) = r.memory_write {
                self.pending_writeback = Some(wb);
            }
            if let Some(miss) = r.memory_read {
                return TraceOp::with_mem(nonmem, MemOp { addr: miss, is_write: false });
            }
            if nonmem > 4096 {
                return TraceOp::compute(nonmem);
            }
        }
    }
}

fn main() {
    let mut trace = FilteredTrace {
        program: RawProgram { i: 0 },
        hierarchy: Hierarchy::paper_default(),
        pending_writeback: None,
    };
    let mut mem_reads = 0u64;
    let mut mem_writes = 0u64;
    let mut instrs = 0u64;
    for _ in 0..200_000 {
        let op = trace.next_op();
        instrs += op.instructions();
        match op.mem {
            Some(m) if m.is_write => mem_writes += 1,
            Some(_) => mem_reads += 1,
            None => {}
        }
    }
    println!("Raw accesses filtered through 32 KB L1 + 4 MB L2:");
    println!("  L1 hit rate      {:.1}%", 100.0 * trace.hierarchy.l1.hit_rate());
    println!("  L2 hit rate      {:.1}%", 100.0 * trace.hierarchy.l2.hit_rate());
    println!("  miss MPKI        {:.2}", 1000.0 * mem_reads as f64 / instrs as f64);
    println!("  writeback ratio  {:.2}", mem_writes as f64 / mem_reads.max(1) as f64);
    println!();
    println!("The hot region lives in L1; the stream misses everywhere — exactly the");
    println!("post-LLC shape the synthetic BenchProfiles model directly.");
}
