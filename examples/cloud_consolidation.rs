//! A cloud-consolidation scenario: four tenants with different memory
//! personalities share one secure channel under rank partitioning, and
//! each gets a hard, interference-free service guarantee.
//!
//! Run with: `cargo run --release --example cloud_consolidation`

use fsmc::core::sched::fs::EnergyOptions;
use fsmc::core::sched::SchedulerKind;
use fsmc::sim::{System, SystemConfig};
use fsmc::workload::{BenchProfile, WorkloadMix};

fn main() {
    // Tenants: a database (mcf-like), an analytics job (milc), a web tier
    // (xalancbmk-like) and a batch job (lbm), two vCPUs each.
    let tenants = [
        ("database", BenchProfile::mcf()),
        ("analytics", BenchProfile::milc()),
        ("web", BenchProfile::xalancbmk()),
        ("batch", BenchProfile::lbm()),
    ];
    let mut profiles = Vec::new();
    for (_, p) in &tenants {
        profiles.push(*p);
        profiles.push(*p);
    }
    let mix = WorkloadMix { name: "cloud", profiles };

    let mut cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
    cfg.energy_options = EnergyOptions::all(); // idle ranks power down

    // The SLA: the database tenant pays for double memory bandwidth —
    // two issue slots per interval for each of its vCPUs (Section 5.1).
    let weights = [2u8, 2, 1, 1, 1, 1, 1, 1];
    let controller = Box::new(fsmc::core::sched::fs::FsScheduler::with_slot_weights(
        cfg.geometry,
        cfg.timing,
        &weights,
        fsmc::core::sched::fs::FsVariant::RankPartitioned,
        false,
        cfg.energy_options,
    ));
    let traces: Vec<Box<dyn fsmc::cpu::trace::TraceSource>> = mix
        .profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Box::new(fsmc::workload::SyntheticTrace::new(*p, 2026 + i as u64))
                as Box<dyn fsmc::cpu::trace::TraceSource>
        })
        .collect();
    let mut sys = System::with_controller(&cfg, traces, controller);
    let stats = sys.run_cycles(60_000);

    println!("Secure consolidation: 8 vCPUs, 8 ranks, FS rank partitioning");
    println!("SLA slot weights {weights:?} — the database tenant gets 2x bandwidth.\n");
    println!("{:<12} {:>8} {:>12} {:>12} {:>10}", "tenant", "vCPU", "IPC", "avg lat", "dummies");
    for (i, core) in stats.cores.iter().enumerate() {
        let (name, _) = tenants[i / 2];
        let d = &stats.mc.domains()[i];
        println!(
            "{:<12} {:>8} {:>12.3} {:>9.0} cy {:>10}",
            name,
            i,
            core.ipc(),
            d.avg_read_latency(),
            d.dummies
        );
    }
    println!("\nPower-downs taken on idle ranks: {}", stats.mc.power_downs);
    println!("Memory energy: {:.2} mJ", stats.energy.total_mj());
    println!("\nThe web tier's latency is low and *constant* regardless of what the");
    println!("database tenant does — the SLA is enforced by the pipeline itself, and");
    println!("no tenant can sense another's load (see the side_channel example).");
}
