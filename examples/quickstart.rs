//! Quickstart: simulate the paper's 8-core system under the non-secure
//! baseline and the secure FS rank-partitioned controller, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use fsmc::core::sched::SchedulerKind;
use fsmc::sim::{System, SystemConfig};
use fsmc::workload::BenchProfile;

fn main() {
    // Eight copies of a milc-like workload (the paper's rate mode).
    for kind in [SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned] {
        let config = SystemConfig::paper_default(kind);
        let mut system = System::homogeneous(&config, BenchProfile::milc(), 42);
        let stats = system.run_cycles(50_000);
        println!("=== {kind} ===");
        println!("  IPC sum               {:.3}", stats.ipc_sum());
        println!("  reads completed       {}", stats.reads_completed);
        println!("  avg read latency      {:.0} DRAM cycles", stats.avg_read_latency());
        println!("  data-bus utilization  {:.1}%", 100.0 * stats.bus_utilization);
        println!("  dummy fraction        {:.1}%", 100.0 * stats.mc.dummy_fraction());
        println!("  memory energy         {:.2} mJ", stats.energy.total_mj());
        println!();
    }
    println!("FS trades ~27% throughput (paper) for a mathematically conflict-free,");
    println!("zero-leakage memory pipeline. See the other examples for the security");
    println!("experiments and `cargo run -p fsmc-bench --bin fig3_summary` for the");
    println!("full design-point comparison.");
}
