//! Every scheduling policy, driven end-to-end through the full system
//! (cores + MSHRs + controller + refresh), must emit a DDR3-legal
//! command stream. The replay checker is an independent implementation
//! of the JEDEC rules, so this cross-validates the whole stack.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::dram::{Geometry, TimingChecker, TimingParams};
use fsmc::sim::{System, SystemConfig};
use fsmc::workload::{BenchProfile, WorkloadMix};

fn assert_legal(kind: K, cycles: u64) {
    let mut cfg = SystemConfig::paper_default(kind);
    cfg.record_commands = true;
    let mix = WorkloadMix::mix1();
    let mut sys = System::from_mix(&cfg, &mix, 99);
    sys.run_cycles(cycles);
    let log = sys.take_command_log();
    assert!(log.len() > 100, "{kind}: only {} commands issued", log.len());
    let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
    let violations = checker.check(&log);
    assert!(
        violations.is_empty(),
        "{kind}: {} violations, first: {}",
        violations.len(),
        violations[0]
    );
}

#[test]
fn baseline_stream_is_legal() {
    assert_legal(K::Baseline, 15_000);
}

#[test]
fn baseline_prefetch_stream_is_legal() {
    assert_legal(K::BaselinePrefetch, 15_000);
}

#[test]
fn fs_rank_partitioned_stream_is_legal() {
    assert_legal(K::FsRankPartitioned, 15_000);
}

#[test]
fn fs_rank_partitioned_prefetch_stream_is_legal() {
    assert_legal(K::FsRankPartitionedPrefetch, 15_000);
}

#[test]
fn fs_bank_partitioned_stream_is_legal() {
    assert_legal(K::FsBankPartitioned, 15_000);
}

#[test]
fn fs_reordered_bp_stream_is_legal() {
    assert_legal(K::FsReorderedBankPartitioned, 15_000);
}

#[test]
fn fs_np_naive_stream_is_legal() {
    assert_legal(K::FsNoPartitionNaive, 15_000);
}

#[test]
fn fs_triple_alternation_stream_is_legal() {
    assert_legal(K::FsTripleAlternation, 15_000);
}

#[test]
fn tp_bank_partitioned_stream_is_legal() {
    assert_legal(K::TpBankPartitioned { turn: 60 }, 15_000);
}

#[test]
fn tp_no_partition_stream_is_legal() {
    assert_legal(K::TpNoPartition { turn: 172 }, 15_000);
}

#[test]
fn tp_fence_stream_is_legal() {
    assert_legal(K::TpFence { period: 300 }, 15_000);
}

#[test]
fn fs_with_all_energy_options_is_legal_across_refresh_windows() {
    use fsmc::core::sched::fs::EnergyOptions;
    let mut cfg = SystemConfig::paper_default(K::FsRankPartitioned);
    cfg.record_commands = true;
    cfg.energy_options = EnergyOptions::all();
    // Long enough to cross two refresh windows with power-down active.
    let mut sys = System::homogeneous(&cfg, BenchProfile::xalancbmk(), 5);
    sys.run_cycles(14_000);
    let log = sys.take_command_log();
    let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
    let violations = checker.check(&log);
    assert!(violations.is_empty(), "first: {}", violations[0]);
}
