//! System-level non-interference: the executable analogue of the paper's
//! zero-leakage theorem, for every FS variant.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::security::noninterference::check_noninterference;

fn assert_non_interfering(kind: K) {
    let report = check_noninterference(kind, 2_000, 8);
    assert!(
        report.is_non_interfering(),
        "{kind} leaked: {} CPU cycles of divergence",
        report.max_divergence()
    );
}

#[test]
fn fs_rank_partitioned_is_non_interfering() {
    assert_non_interfering(K::FsRankPartitioned);
}

#[test]
fn fs_bank_partitioned_is_non_interfering() {
    assert_non_interfering(K::FsBankPartitioned);
}

#[test]
fn fs_reordered_bp_is_non_interfering() {
    assert_non_interfering(K::FsReorderedBankPartitioned);
}

#[test]
fn fs_np_naive_is_non_interfering() {
    assert_non_interfering(K::FsNoPartitionNaive);
}

#[test]
fn fs_triple_alternation_is_non_interfering() {
    assert_non_interfering(K::FsTripleAlternation);
}

#[test]
fn fs_with_prefetch_is_non_interfering() {
    // Prefetching fills *dummy* slots only; the victim's service must
    // remain co-runner-independent.
    assert_non_interfering(K::FsRankPartitionedPrefetch);
}

#[test]
fn fs_with_energy_optimisations_is_non_interfering() {
    use fsmc::core::sched::fs::EnergyOptions;
    use fsmc::cpu::trace::TraceSource;
    use fsmc::sim::{System, SystemConfig};
    use fsmc::workload::{BenchProfile, FloodTrace, IdleTrace, SyntheticTrace};

    let profile_under = |flood: bool| -> Vec<u64> {
        let mut cfg = SystemConfig::paper_default(K::FsRankPartitioned);
        cfg.energy_options = EnergyOptions::all();
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        traces.push(Box::new(SyntheticTrace::new(BenchProfile::zeusmp(), 77)));
        for _ in 1..cfg.cores {
            if flood {
                traces.push(Box::new(FloodTrace::new()));
            } else {
                traces.push(Box::new(IdleTrace));
            }
        }
        let mut sys = System::new(&cfg, traces);
        sys.run_profile(0, 2_000, 8)
    };
    assert_eq!(profile_under(false), profile_under(true));
}

#[test]
fn baseline_interferes() {
    let report = check_noninterference(K::Baseline, 2_000, 8);
    assert!(!report.is_non_interfering());
}

#[test]
fn tp_no_partition_is_non_interfering() {
    // Close-page TP with strict turn gating is fully deterministic.
    assert_non_interfering(K::TpNoPartition { turn: 172 });
}

#[test]
fn tp_fence_is_non_interfering() {
    // Flush-based TP: new starts stop a timing-derived fence before every
    // period boundary, in-flight work drains, and a precharge-all sweep
    // leaves the next owner the same all-banks-closed state regardless of
    // what the previous owner did.
    assert_non_interfering(K::TpFence { period: 300 });
}

#[test]
fn tp_bank_partitioned_leak_is_bounded_while_fs_is_exact() {
    // Bank-partitioned TP with the paper's ~12ns dead time retains a
    // small cross-turn rank-level coupling (tFAW/tRRD windows span the
    // turn boundary; closing them would need a 24-cycle dead time). Our
    // port bounds it to ~1% of execution time — in stark contrast to the
    // baseline's ~10x divergence and FS's *exact* zero.
    let report = check_noninterference(K::TpBankPartitioned { turn: 60 }, 2_000, 8);
    let total = *report.idle_profile.boundaries.last().expect("profile") as f64;
    let leak = report.max_divergence() as f64 / total;
    assert!(leak < 0.02, "TP-BP leak {:.3}% exceeds the expected bound", 100.0 * leak);
}
