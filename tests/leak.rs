//! Determinism contract for the covert-channel harness: the capacity
//! CSV must be byte-identical at any thread count and on both
//! simulation paths (per-cycle and event-driven fast path) — the
//! decoder sees the exact same latencies either way.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::dram::DeviceGeneration;
use fsmc::leak::{
    capacity_matrix, csv_row, default_secret, measure_cell, render_csv, run_leak_campaign,
    LeakCampaignConfig, Protocol,
};
use fsmc::sim::Engine;

const WINDOW_CYCLES: u64 = 2_500;
const WINDOWS: usize = 30;

fn small_matrix(engine: &Engine) -> String {
    let cells = capacity_matrix(
        engine,
        &[DeviceGeneration::Ddr3_1600, DeviceGeneration::Hbm2],
        &[K::Baseline, K::TpFence { period: 300 }, K::FsRankPartitioned],
        &[Protocol::Intensity, Protocol::BankConflict],
        &default_secret(),
        WINDOW_CYCLES,
        WINDOWS,
    );
    render_csv(&cells)
}

#[test]
fn capacity_csv_is_byte_identical_across_thread_counts() {
    let single = small_matrix(&Engine::with_threads(1));
    let threaded = small_matrix(&Engine::with_threads(8));
    assert_eq!(single, threaded, "capacity CSV depends on FSMC_THREADS");
    // Sanity: the CSV actually carries the matrix, not just a header.
    assert_eq!(single.lines().count(), 1 + 2 * 3 * 2);
}

#[test]
fn capacity_cell_is_byte_identical_with_and_without_fastpath() {
    let secret = default_secret();
    for kind in [K::Baseline, K::FsRankPartitioned] {
        let fast = measure_cell(
            DeviceGeneration::Ddr3_1600,
            kind,
            Protocol::Intensity,
            &secret,
            WINDOW_CYCLES,
            WINDOWS,
            false,
        )
        .unwrap();
        let slow = measure_cell(
            DeviceGeneration::Ddr3_1600,
            kind,
            Protocol::Intensity,
            &secret,
            WINDOW_CYCLES,
            WINDOWS,
            true,
        )
        .unwrap();
        assert_eq!(
            csv_row(&fast),
            csv_row(&slow),
            "{kind:?}: decoder saw different latencies on the two simulation paths"
        );
        // Stronger than the rounded CSV: the raw window series matches.
        assert_eq!(fast.ber.to_bits(), slow.ber.to_bits());
        assert_eq!(fast.mi_bits.to_bits(), slow.mi_bits.to_bits());
    }
}

#[test]
fn leak_campaign_report_is_identical_across_thread_counts() {
    let mut cfg = LeakCampaignConfig::new(5);
    cfg.population = 6;
    cfg.windows = 30;
    let single = run_leak_campaign(&Engine::with_threads(1), &cfg).render();
    let threaded = run_leak_campaign(&Engine::with_threads(8), &cfg).render();
    assert_eq!(single, threaded, "campaign report depends on FSMC_THREADS");
}
