//! `FSMC_NO_FASTPATH` must act identically on `fsmc chaos` repro mode
//! (`run_single`) and campaign mode (`run_campaign`): both construct
//! systems through the same path, so forcing per-cycle stepping changes
//! wall-clock time and nothing else — even for reconfiguration plans,
//! which are the one faulted case that keeps the fast path.
//!
//! This lives in its own test binary on purpose: the env var is
//! process-global, and the single `#[test]` here is the only code in
//! its process, so setting it cannot race another test's `System`
//! construction.

use fsmc::sim::{run_campaign, run_single, CampaignConfig, Engine, FaultKind, FaultPlan};

#[test]
fn no_fastpath_is_honored_identically_in_repro_and_campaign_modes() {
    let mut cfg = CampaignConfig::new(1);
    cfg.population = 6;
    cfg.cycles = 6_000;
    cfg.churn = true;
    let plan = FaultPlan::new(5).with(FaultKind::DomainLeave { domain: 1, at: 2_000 });
    assert!(plan.is_pure_reconfig());

    let fast_single = run_single(&cfg, plan.clone()).expect("reference run");
    let fast_campaign = run_campaign(&Engine::with_threads(4), &cfg).expect("reference run");

    std::env::set_var("FSMC_NO_FASTPATH", "1");
    let slow_single = run_single(&cfg, plan).expect("reference run");
    let slow_campaign = run_campaign(&Engine::with_threads(4), &cfg).expect("reference run");
    std::env::remove_var("FSMC_NO_FASTPATH");

    assert_eq!(fast_single.outcome, slow_single.outcome, "repro-mode classification changed");
    assert_eq!(fast_single.error, slow_single.error);
    assert_eq!(
        fast_single.minimal_plan().spec(),
        slow_single.minimal_plan().spec(),
        "repro-mode shrinking changed"
    );
    assert_eq!(
        fast_campaign.render(),
        slow_campaign.render(),
        "campaign-mode report changed under FSMC_NO_FASTPATH"
    );
}
