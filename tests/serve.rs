//! End-to-end robustness proof for the experiment service: the daemon
//! drives the *real* `fsmc job-exec` worker binary, and every result
//! that comes back over the socket must be bit-identical to running the
//! same plan on the in-process engine — with chaos killing and hanging
//! workers, with a warm cache, and with deadlines poisoning jobs that
//! can never finish.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::serve::{run_plan_remote, serve, ChaosSpec, Client, ServeOptions};
use fsmc::sim::{Engine, ExperimentPlan, FsmcError, JobSpec};
use fsmc::workload::WorkloadMix;
use std::path::{Path, PathBuf};
use std::time::Duration;

const CYCLES: u64 = 3_000;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmc-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The real worker: the compiled `fsmc` binary's hidden `job-exec`
/// subcommand, exactly as `fsmc serve` spawns it in production.
fn real_worker() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_fsmc").to_string(), "job-exec".into()]
}

fn options(dir: &Path, worker: Vec<String>) -> ServeOptions {
    ServeOptions {
        socket: dir.join("fsmc.sock"),
        cache_dir: dir.join("cache"),
        workers: 2,
        timeout_ms: 60_000,
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        queue_capacity: 64,
        worker_cmd: worker,
        chaos: None,
    }
}

fn start(opts: ServeOptions) -> (Client, std::thread::JoinHandle<()>) {
    let socket = opts.socket.clone();
    let h = std::thread::spawn(move || serve(opts).expect("daemon runs"));
    let client = Client::new(socket);
    for _ in 0..300 {
        if client.ping() {
            return (client, h);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up");
}

fn small_plan() -> ExperimentPlan {
    let mixes = [WorkloadMix::mix1_for(2), WorkloadMix::mix2_for(2)];
    let kinds = [K::Baseline, K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }];
    ExperimentPlan::grid(&mixes, &kinds, CYCLES, 7)
}

/// Every slot the service fills must match the in-process engine on the
/// fields the payload transports (per-core stats, read counts, bus
/// utilization — bit-for-bit via `f64::to_bits`).
fn assert_slots_identical(
    direct: &[Result<fsmc::sim::runner::RunResult, FsmcError>],
    served: &[Result<fsmc::sim::runner::RunResult, FsmcError>],
) {
    assert_eq!(direct.len(), served.len());
    for (i, (d, s)) in direct.iter().zip(served).enumerate() {
        let d = d.as_ref().expect("direct slot ok");
        let s = s.as_ref().expect("served slot ok");
        assert_eq!(d.stats.cores, s.stats.cores, "slot {i}: core stats diverged");
        assert_eq!(d.stats.reads_completed, s.stats.reads_completed, "slot {i}");
        assert_eq!(
            d.stats.bus_utilization.to_bits(),
            s.stats.bus_utilization.to_bits(),
            "slot {i}: bus utilization diverged"
        );
    }
}

#[test]
fn served_plan_is_bit_identical_and_warm_cache_resubmits_run_nothing() {
    let dir = scratch("identity");
    let (client, h) = start(options(&dir, real_worker()));
    let plan = small_plan();
    let direct = Engine::with_threads(2).run(&plan);
    let served = run_plan_remote(&dir.join("fsmc.sock"), &plan);
    assert_slots_identical(&direct, &served);
    let stats = client.stats().unwrap();
    assert!(stats.contains("simulations=6"), "{stats}");
    // Resubmitting the identical plan must be answered entirely from
    // the content-addressed cache: zero new simulations.
    let warm = run_plan_remote(&dir.join("fsmc.sock"), &plan);
    assert_slots_identical(&direct, &warm);
    let stats = client.stats().unwrap();
    assert!(stats.contains("simulations=6"), "resubmit ran new work: {stats}");
    assert!(stats.contains("cache_hits=6"), "{stats}");
    client.shutdown();
    h.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_killed_and_hung_workers_retry_to_the_same_bytes() {
    let dir = scratch("chaos");
    let mut opts = options(&dir, real_worker());
    // Kill a third of attempts outright, wedge some more until the
    // deadline; the retry ladder must still converge on every job, and
    // on exactly the clean run's bytes.
    opts.chaos = Some(ChaosSpec { kill_pct: 35, hang_pct: 15, seed: 9 });
    opts.timeout_ms = 4_000;
    opts.max_attempts = 4;
    let (client, h) = start(opts);
    let plan = small_plan();
    let direct = Engine::with_threads(2).run(&plan);
    let served = run_plan_remote(&dir.join("fsmc.sock"), &plan);
    assert_slots_identical(&direct, &served);
    let stats = client.stats().unwrap();
    assert!(stats.contains("poisoned=0"), "{stats}");
    let retries: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("retries="))
        .and_then(|v| v.parse().ok())
        .expect("stats line carries retries=");
    assert!(retries > 0, "chaos injected no faults — spec/seed drifted: {stats}");
    client.shutdown();
    h.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_overrun_retries_then_poisons_with_structured_record() {
    let dir = scratch("deadline");
    // A worker that reads its spec and then never answers: every
    // attempt must be killed at the deadline and retried with backoff,
    // and after `max_attempts` the job poisons.
    let hung = vec!["/bin/sh".into(), "-c".into(), "read line; sleep 30".into()];
    let mut opts = options(&dir, hung);
    opts.timeout_ms = 120;
    opts.max_attempts = 2;
    opts.backoff_base_ms = 40;
    opts.backoff_cap_ms = 80;
    let (client, h) = start(opts);
    let spec =
        JobSpec::parse_line("cores=2 cycles=1000 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1")
            .unwrap();
    let t0 = std::time::Instant::now();
    let sub = client.submit(0, &spec).unwrap();
    let record = client.wait(sub.id).unwrap().expect_err("job must poison");
    assert_eq!(record.attempts, 2);
    assert_eq!(record.reason, "timeout");
    // Two 120ms deadlines plus one 40ms backoff must have elapsed.
    assert!(t0.elapsed() >= Duration::from_millis(280), "retry ladder ran too fast");
    let stats = client.stats().unwrap();
    assert!(stats.contains("poisoned=1"), "{stats}");
    // The same failure surfaces through the engine-compatible router as
    // a typed `FsmcError::Service` carrying the spec and attempt count.
    let mut plan = ExperimentPlan::new();
    plan.push(spec.to_job().unwrap());
    let slots = run_plan_remote(&dir.join("fsmc.sock"), &plan);
    match &slots[0] {
        Err(FsmcError::Service(f)) => {
            assert_eq!(f.attempts, 2);
            assert_eq!(f.reason, "timeout");
            assert!(f.spec.contains("mix=mix1"), "{}", f.spec);
        }
        other => panic!("expected FsmcError::Service, got {other:?}"),
    }
    client.shutdown();
    h.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
