//! Observability acceptance: per-domain metrics are deterministic across
//! thread counts and simulation paths, the Chrome trace export is
//! structurally sound, and — the paper's point, read off the histograms —
//! FS per-domain latency distributions are bit-identical across co-runner
//! environments while the baseline's leak.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::cpu::trace::TraceSource;
use fsmc::obs::{ChromeTraceBuilder, DomainLatency, MetricsReport};
use fsmc::sim::{Engine, ExperimentJob, ExperimentPlan, System, SystemConfig};
use fsmc::workload::{BenchProfile, FloodTrace, IdleTrace, SyntheticTrace, WorkloadMix};

fn suite_reports(threads: usize) -> Vec<MetricsReport> {
    let mut plan = ExperimentPlan::new();
    for kind in [K::Baseline, K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }] {
        plan.push(ExperimentJob::new(WorkloadMix::mix1_for(4), kind, 6_000, 7).with_metrics());
    }
    Engine::with_threads(threads)
        .run(&plan)
        .into_iter()
        .map(|r| r.expect("run ok").metrics.expect("metrics armed"))
        .collect()
}

#[test]
fn metrics_are_byte_identical_across_thread_counts() {
    let serial = suite_reports(1);
    let parallel = suite_reports(8);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|r| r.domains.iter().any(|d| d.count > 0)), "empty histograms");
    // The rendered text (what lands in reports) matches too.
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.render(), b.render());
        assert_eq!(a.csv_cells(), b.csv_cells());
    }
}

fn path_report(kind: K, fast: bool) -> MetricsReport {
    let cfg = SystemConfig::with_cores(kind, 4);
    let mix = WorkloadMix::mix2_for(4);
    let mut sys = System::try_from_mix(&cfg, &mix, 9).expect("system builds");
    if !fast {
        sys.disable_fastpath();
    }
    sys.enable_metrics();
    sys.run_cycles(8_000);
    sys.metrics_report().expect("metrics armed")
}

#[test]
fn metrics_identical_on_fast_and_per_cycle_paths() {
    for kind in [K::Baseline, K::FsRankPartitioned, K::FsNoPartitionNaive] {
        assert_eq!(path_report(kind, true), path_report(kind, false), "{kind}");
    }
}

/// The attacker's (domain 0) latency summary under `kind`, against seven
/// idle or seven memory-flooding co-runners — the Figure 4 environments.
fn domain0_latency(kind: K, flooding: bool) -> DomainLatency {
    let cfg = SystemConfig::paper_default(kind);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    traces.push(Box::new(SyntheticTrace::new(BenchProfile::mcf(), 0xA77AC)));
    for _ in 1..cfg.cores {
        if flooding {
            traces.push(Box::new(FloodTrace::new()));
        } else {
            traces.push(Box::new(IdleTrace));
        }
    }
    let mut sys = System::new(&cfg, traces);
    sys.enable_metrics();
    sys.run_cycles(12_000);
    let report = sys.metrics_report().expect("metrics armed");
    report.domains[0]
}

#[test]
fn fs_domain_histogram_is_identical_across_corunner_environments() {
    let idle = domain0_latency(K::FsRankPartitioned, false);
    let flooded = domain0_latency(K::FsRankPartitioned, true);
    assert!(idle.count > 0, "attacker retired no reads");
    assert_eq!(idle, flooded, "FS domain-0 latency histogram depends on co-runners");
}

#[test]
fn baseline_domain_histogram_leaks_corunner_activity() {
    let idle = domain0_latency(K::Baseline, false);
    let flooded = domain0_latency(K::Baseline, true);
    assert!(idle.count > 0 && flooded.count > 0);
    assert_ne!(idle, flooded, "baseline latency histogram should reflect co-runner pressure");
}

#[test]
fn chrome_trace_export_is_structurally_valid() {
    let cfg = SystemConfig::with_cores(K::FsRankPartitioned, 4);
    let mix = WorkloadMix::mix1_for(4);
    let mut sys = System::try_from_mix(&cfg, &mix, 3).expect("system builds");
    sys.enable_tracing();
    sys.run_cycles(3_000);
    let events = sys.take_trace();
    assert!(!events.is_empty(), "tracing armed but no events recorded");
    let json = ChromeTraceBuilder::new(sys.lane_layout(), "obs test").export(&events);
    for needle in
        ["\"traceEvents\"", "\"ph\":\"M\"", "\"ph\":\"X\"", "\"displayTimeUnit\"", "[dom 0]"]
    {
        assert!(json.contains(needle), "export missing {needle}");
    }
    // Balanced structure outside string literals — a parser-free check
    // (Perfetto acceptance is exercised by the CI obs-smoke step).
    let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close");
    }
    assert_eq!(depth, 0, "unbalanced braces/brackets");
    assert!(!in_str, "unterminated string");
}

/// A system with no observability armed records nothing and exposes no
/// report — the disabled path is the default everywhere.
#[test]
fn disabled_observability_yields_no_artifacts() {
    let cfg = SystemConfig::with_cores(K::FsRankPartitioned, 4);
    let mix = WorkloadMix::mix1_for(4);
    let mut sys = System::try_from_mix(&cfg, &mix, 3).expect("system builds");
    sys.run_cycles(2_000);
    assert!(sys.take_trace().is_empty());
    assert!(sys.metrics_report().is_none());
}
