//! End-to-end chaos-campaign checks: thread-count determinism of the
//! whole campaign (classification table, errors, shrunk plans), the
//! online monitor catching silent cadence drift the controller itself
//! misses, shrinking a seeded multi-fault plan to its minimal culprit,
//! and provenance repro lines that parse back into the same plan.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{
    run_campaign, CampaignConfig, Engine, ExperimentJob, FaultKind, FaultPlan, FsmcError, Outcome,
    SystemConfig,
};
use fsmc::workload::{BenchProfile, WorkloadMix};

fn small_campaign(scheduler: K) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(1);
    cfg.population = 6;
    cfg.cycles = 4_000;
    cfg.scheduler = scheduler;
    cfg
}

#[test]
fn campaign_is_deterministic_at_any_thread_count() {
    let cfg = small_campaign(K::FsRankPartitioned);
    let serial = run_campaign(&Engine::with_threads(1), &cfg).expect("reference run");
    let parallel = run_campaign(&Engine::with_threads(8), &cfg).expect("reference run");
    assert_eq!(serial.cases.len(), parallel.cases.len());
    for (s, p) in serial.cases.iter().zip(&parallel.cases) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.plan, p.plan);
        assert_eq!(s.outcome, p.outcome, "case {} classification", s.index);
        assert_eq!(s.error, p.error, "case {} error text", s.index);
        assert_eq!(
            s.minimal_plan().spec(),
            p.minimal_plan().spec(),
            "case {} shrunk plan",
            s.index
        );
    }
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn monitor_catches_silent_cadence_drift_the_controller_misses() {
    // On the no-partitioning pitch (l = 43) a few cycles of command
    // delay stay device-legal — every tRC/tRCD bound still holds, the
    // controller's own checker sees nothing and never degrades — but the
    // commands have slipped off the solved cadence, silently re-opening
    // the timing channel. Only the online monitor can flag this.
    let mix = WorkloadMix::rate(BenchProfile::mcf(), 4);
    let plan = FaultPlan::new(8).with(FaultKind::DelayCommand { period: 118, delay: 4, max: 3 });
    let job = |monitor: bool| {
        let mut cfg = SystemConfig::with_cores(K::FsNoPartitionNaive, 4);
        cfg.monitor = monitor;
        ExperimentJob::new(mix.clone(), K::FsNoPartitionNaive, 6_000, 42)
            .with_config(cfg)
            .with_faults(plan.clone())
    };
    let unmonitored = job(false).run().expect("without the monitor the drift is silent");
    assert!(!unmonitored.stats.mc.degraded, "controller itself saw nothing");
    match job(true).run() {
        Err(FsmcError::Invariant(b)) => {
            let msg = b.to_string();
            assert!(msg.contains("off its slot phase"), "{msg}");
            assert!(msg.contains("--faults 'delay(118,4,3)'"), "provenance: {msg}");
        }
        other => panic!("monitor must flag the drift, got {other:?}"),
    }
}

#[test]
fn campaign_shrinks_failures_and_emits_parseable_repro_lines() {
    let cfg = small_campaign(K::FsRankPartitioned);
    let report = run_campaign(&Engine::with_threads(4), &cfg).expect("reference run");
    let failures: Vec<_> = report.failures().collect();
    assert!(!failures.is_empty(), "seed 1 must surface at least one failure");
    for case in failures {
        // Shrinking ran on every multi-fault failure and is 1-minimal.
        let min = case.minimal_plan();
        if case.plan.faults.len() > 1 {
            assert!(case.shrunk.is_some(), "case {} not shrunk", case.index);
            assert!(min.faults.len() <= case.plan.faults.len());
        }
        // Errors carry the provenance of the plan that ran.
        if let Some(e) = &case.error {
            assert!(
                e.contains(&format!("--fault-seed {}", case.plan.seed)),
                "case {}: {e}",
                case.index
            );
            assert!(e.contains(&format!("--faults '{}'", case.plan.spec())), "{e}");
        }
        // The repro line's fault spec parses back into the same plan.
        let line = report.repro_line(case);
        let spec = line.split("--faults '").nth(1).and_then(|s| s.strip_suffix('\''));
        let spec = spec.unwrap_or_else(|| panic!("no fault spec in {line:?}"));
        let parsed = FaultPlan::parse_spec(min.seed, spec).expect("repro spec parses");
        assert_eq!(&parsed, min, "repro round-trip for case {}", case.index);
    }
}

#[test]
fn churn_campaign_is_deterministic_and_repro_lines_round_trip() {
    // With churn on, the fault pool adds persistent faults (stuck bank,
    // dead rank, thermal refresh) and domain join/leave; the campaign
    // must stay bit-identical at any thread count, actually exercise
    // the reconfiguration outcomes, and every repro line — including
    // the new event syntax — must parse back into the plan it names.
    let mut cfg = small_campaign(K::FsRankPartitioned);
    cfg.churn = true;
    cfg.population = 10;
    cfg.cycles = 6_000;
    let serial = run_campaign(&Engine::with_threads(1), &cfg).expect("reference run");
    let parallel = run_campaign(&Engine::with_threads(8), &cfg).expect("reference run");
    assert_eq!(serial.render(), parallel.render());
    assert!(
        serial.count(Outcome::Reconfigured) + serial.count(Outcome::ReconfigLeak) > 0,
        "churn pool never reconfigured:\n{}",
        serial.render()
    );
    assert!(
        serial.cases.iter().any(|c| !c.plan.reconfig_events().is_empty()),
        "no plan drew a reconfiguration event"
    );
    for case in &serial.cases {
        let min = case.minimal_plan();
        let line = serial.repro_line(case);
        let spec = line.split("--faults '").nth(1).and_then(|s| s.strip_suffix('\''));
        let spec = spec.unwrap_or_else(|| panic!("no fault spec in {line:?}"));
        let parsed = FaultPlan::parse_spec(min.seed, spec).expect("repro spec parses");
        assert_eq!(&parsed, min, "repro round-trip for case {}", case.index);
    }
}

#[test]
fn graceful_degradation_is_the_common_response_to_faults() {
    // The designed behaviour under fault is absorption, not collapse: a
    // seeded population on the rank-partitioned FS pipeline must show
    // the system degrading gracefully at least as often as it fails.
    let cfg = small_campaign(K::FsRankPartitioned);
    let report = run_campaign(&Engine::with_threads(4), &cfg).expect("reference run");
    let graceful = report.count(Outcome::GracefulDegrade) + report.count(Outcome::Clean);
    let failed = report.failures().count();
    assert!(graceful >= failed, "{graceful} absorbed vs {failed} failed\n{}", report.render());
    assert_eq!(graceful + failed, cfg.population);
}
