//! Batched replay and FS fast-forward: byte-identity gates.
//!
//! The engine's batched mode (`FSMC_BATCH` / `Engine::with_batch`)
//! interleaves K systems over one decoded tape, and the pure-FS
//! schedulers bulk-advance their event loop through
//! `MemoryController::fast_forward`. Both are *optimizations of the
//! schedule of work, not of the work itself*: every observable — IPCs,
//! statistics, metrics histograms, end cycles — must be byte-identical
//! to the independent per-job, per-cycle runs, at any thread count.

use fsmc::core::sched::{ReconfigEvent, SchedulerKind as K};
use fsmc::sim::{Engine, ExperimentJob, ExperimentPlan, System, SystemConfig};
use fsmc::workload::{BenchProfile, WorkloadMix};

/// A plan mixing two replay groups (mix1 and mix2 under four policies
/// each) with metrics on, so histograms are part of the fingerprint.
fn grouped_plan() -> ExperimentPlan {
    let kinds = [
        K::Baseline,
        K::FsRankPartitioned,
        K::FsBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
    ];
    let mut plan = ExperimentPlan::new();
    for mix in [WorkloadMix::mix1(), WorkloadMix::mix2()] {
        for &k in &kinds {
            plan.push(ExperimentJob::new(mix.clone(), k, 6_000, 11).with_metrics());
        }
    }
    plan
}

/// K-batched replay returns the same slots, bytes and failures as K
/// independent jobs, at any `(threads, batch)` combination.
#[test]
fn batched_replay_is_byte_identical_to_independent_jobs() {
    let plan = grouped_plan();
    let reference = format!("{:?}", Engine::with_threads(1).run(&plan));
    for (threads, batch) in [(1, 4), (8, 4), (8, 8), (2, 3)] {
        let out = Engine::with_threads(threads).with_batch(batch).run(&plan);
        assert_eq!(reference, format!("{out:?}"), "diverged at threads={threads} batch={batch}");
    }
}

/// Jobs coalesce only when they share the whole replay tuple — mix,
/// per-core profiles, seed and cycle budget — and groups never exceed
/// the requested width.
#[test]
fn batches_group_only_matching_replay_tuples() {
    let mix = WorkloadMix::rate(BenchProfile::mcf(), 2);
    let other = WorkloadMix::rate(BenchProfile::milc(), 2);
    let mut plan = ExperimentPlan::new();
    plan.push(ExperimentJob::new(mix.clone(), K::Baseline, 1_000, 1)); // 0
    plan.push(ExperimentJob::new(mix.clone(), K::FsRankPartitioned, 1_000, 1)); // 1
    plan.push(ExperimentJob::new(mix.clone(), K::FsBankPartitioned, 1_000, 2)); // 2: seed differs
    plan.push(ExperimentJob::new(mix.clone(), K::FsBankPartitioned, 2_000, 1)); // 3: cycles differ
    plan.push(ExperimentJob::new(other, K::Baseline, 1_000, 1)); // 4: mix differs
    plan.push(ExperimentJob::new(mix.clone(), K::TpNoPartition { turn: 172 }, 1_000, 1)); // 5
    plan.push(ExperimentJob::new(mix, K::ChannelPartitioned, 1_000, 1)); // 6: overflows width 3
    assert_eq!(plan.batches(3), vec![vec![0, 1, 5], vec![2], vec![3], vec![4], vec![6]]);
    assert_eq!(plan.batches(1).len(), 7, "width 1 never coalesces");
}

/// A failing member of a batch keeps its error in its own slot; the
/// rest of the group completes with byte-identical results.
#[test]
fn batch_member_failure_stays_in_its_slot() {
    let mix = WorkloadMix::rate(BenchProfile::mcf(), 4);
    let mut plan = ExperimentPlan::new();
    plan.push(ExperimentJob::new(mix.clone(), K::Baseline, 4_000, 3));
    // Same replay tuple, but a config demanding more cores than the mix
    // supplies traces for: fails at preparation, inside the batch.
    plan.push(
        ExperimentJob::new(mix.clone(), K::FsRankPartitioned, 4_000, 3)
            .with_config(SystemConfig::with_cores(K::FsRankPartitioned, 6)),
    );
    plan.push(ExperimentJob::new(mix, K::FsRankPartitioned, 4_000, 3));
    let solo = Engine::with_threads(1).run(&plan);
    let batched = Engine::with_threads(1).with_batch(3).run(&plan);
    assert!(batched[1].is_err(), "misconfigured member must fail");
    assert_eq!(format!("{solo:?}"), format!("{batched:?}"));
}

/// FS fast-forward straddles wall-clock refresh windows bit-identically:
/// with no monitor armed the span is replayed inside the controller,
/// and 30k cycles cross many tREFI boundaries (quiesce, refresh
/// commands, recovery) for every FS variant.
#[test]
fn fs_fast_forward_is_bit_identical_across_refresh_windows() {
    for kind in [
        K::FsRankPartitioned,
        K::FsRankPartitionedPrefetch,
        K::FsBankPartitioned,
        K::FsReorderedBankPartitioned,
        K::FsNoPartitionNaive,
        K::FsTripleAlternation,
    ] {
        let cfg = SystemConfig::paper_default(kind);
        let mix = WorkloadMix::mix1();
        let mut fast = System::from_mix(&cfg, &mix, 7);
        let mut slow = System::from_mix(&cfg, &mix, 7);
        slow.disable_fastpath();
        let sf = fast.run_cycles(30_000);
        let ss = slow.run_cycles(30_000);
        assert_eq!(format!("{sf:?}"), format!("{ss:?}"), "{kind}: stats diverge");
        assert_eq!(fast.dram_cycle(), slow.dram_cycle(), "{kind}: end cycles diverge");
    }
}

/// FS fast-forward around a reconfiguration epoch boundary: the skip
/// clamps at the event promotion and adoption cycles, so a domain
/// leaving and a bank dying mid-run reproduce per-cycle stepping
/// exactly.
#[test]
fn fs_fast_forward_is_bit_identical_across_reconfig_epochs() {
    for kind in [K::FsRankPartitioned, K::FsBankPartitioned] {
        let cfg = SystemConfig::paper_default(kind);
        let mix = WorkloadMix::mix1();
        let mut fast = System::from_mix(&cfg, &mix, 9);
        let mut slow = System::from_mix(&cfg, &mix, 9);
        slow.disable_fastpath();
        for sys in [&mut fast, &mut slow] {
            sys.schedule_reconfig(4_000, ReconfigEvent::DomainLeave { domain: 2 });
            sys.schedule_reconfig(9_000, ReconfigEvent::StuckBank { rank: 1, bank: 3 });
            sys.schedule_reconfig(14_000, ReconfigEvent::DomainJoin { domain: 2 });
        }
        let sf = fast.try_run_cycles(20_000).expect("clean fast run");
        let ss = slow.try_run_cycles(20_000).expect("clean slow run");
        assert_eq!(format!("{sf:?}"), format!("{ss:?}"), "{kind}: stats diverge");
        assert_eq!(fast.dram_cycle(), slow.dram_cycle(), "{kind}: end cycles diverge");
    }
}
