//! Root-level reconfiguration checks: survivor non-interference across
//! domain churn and persistent faults (with FR-FCFS as the negative
//! control), drained-boundary adoption under the online monitor, and
//! fast-path vs per-cycle bit-identity for pure-reconfiguration runs.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::security::check_churn_noninterference;
use fsmc::sim::{ExperimentJob, FaultKind, FaultPlan, System, SystemConfig};
use fsmc::workload::{BenchProfile, WorkloadMix};

fn churn_job(kind: K, cycles: u64, plan: FaultPlan) -> ExperimentJob {
    let mut cfg = SystemConfig::with_cores(kind, 4);
    cfg.monitor = true;
    ExperimentJob::new(WorkloadMix::rate(BenchProfile::mcf(), 4), kind, cycles, 42)
        .with_config(cfg)
        .with_faults(plan)
}

#[test]
fn fs_survivor_profile_is_bit_identical_across_churn_environments() {
    // The hard requirement: a survivor's execution profile under FS is
    // byte-identical whether nothing happened, a co-domain left, a
    // co-domain joined mid-run, or a persistent bank fault in another
    // domain's rank forced a re-solved schedule adoption.
    let r = check_churn_noninterference(K::FsRankPartitioned, 800, 1_500, 6)
        .expect("churn must reconfigure cleanly under FS");
    assert!(
        r.is_non_interfering(),
        "FS survivor diverged under {:?}: {} cycles",
        r.divergent_envs(),
        r.max_divergence()
    );
    // Non-vacuous: every environment produced the full profile.
    for (env, p) in &r.profiles {
        assert_eq!(p.len(), 6, "{} profile truncated", env.name());
    }
}

#[test]
fn frfcfs_survivor_profile_diverges_under_the_same_probe() {
    // The negative control that keeps the FS test honest: FR-FCFS has
    // no fixed service schedule, so a flooding co-runner leaving (or
    // joining late) visibly changes the observer's timing.
    let r = check_churn_noninterference(K::Baseline, 800, 2_000, 10)
        .expect("baseline churn runs must complete");
    assert!(!r.is_non_interfering(), "baseline unexpectedly churn-independent");
    assert!(r.max_divergence() > 0);
}

#[test]
fn reconfiguration_adopts_at_drained_boundaries_under_the_monitor() {
    // A leave, a foreign stuck bank and a (re)join, spaced out so each
    // quiesces and adopts in its own epoch. The run must stay clean
    // under the online monitor — which checks cadence on both sides of
    // every boundary — and the controller must have re-solved (not
    // degraded) each time.
    let plan = FaultPlan::new(0)
        .with(FaultKind::DomainLeave { domain: 1, at: 1_000 })
        .with(FaultKind::StuckBank { rank: 3, bank: 2, at: 3_000 })
        .with(FaultKind::DomainJoin { domain: 1, at: 5_000 });
    let r = churn_job(K::FsRankPartitioned, 8_000, plan)
        .run()
        .expect("monitored churn run must not breach");
    assert_eq!(r.stats.mc.reconfigs, 3, "one adoption per event");
    assert!(!r.stats.mc.degraded, "reconfiguration must re-solve, not degrade");
}

#[test]
fn pure_reconfig_runs_keep_the_fast_path_and_stay_bit_identical() {
    // Pure-reconfiguration plans are the one faulted case that keeps
    // the event-driven fast path (adoption happens inside `step`, and
    // skips clamp at the next event / adoption cycle). Disabling it —
    // what `FSMC_NO_FASTPATH=1` does — must not change a single bit.
    let plan = FaultPlan::new(0)
        .with(FaultKind::DomainLeave { domain: 2, at: 1_200 })
        .with(FaultKind::DomainJoin { domain: 2, at: 4_200 });
    assert!(plan.is_pure_reconfig());
    let mk = || {
        let mut cfg = SystemConfig::with_cores(K::FsRankPartitioned, 4);
        cfg.monitor = true;
        let mut sys = System::homogeneous(&cfg, BenchProfile::mcf(), 42);
        for (at, ev) in plan.reconfig_events() {
            sys.schedule_reconfig(at, ev);
        }
        sys
    };
    let mut fast = mk();
    let mut slow = mk();
    slow.disable_fastpath();
    let a = fast.try_run_cycles(8_000).expect("fast run");
    let b = slow.try_run_cycles(8_000).expect("per-cycle run");
    let (skipped, elided) = fast.fastpath_counters();
    assert!(skipped + elided > 0, "fast path never engaged: the comparison is vacuous");
    assert_eq!(fast.fastpath_counters().0 + slow.fastpath_counters().0, skipped);
    assert_eq!(a.cores, b.cores, "per-core execution diverged");
    assert_eq!(a.mc, b.mc, "controller stats diverged");
    assert_eq!(a.reads_completed, b.reads_completed);
    assert_eq!(a.dram_cycles, b.dram_cycles);
}
