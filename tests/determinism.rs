//! Determinism: simulations are exactly reproducible given a seed — the
//! property that makes the non-interference comparisons meaningful.

use fsmc::bench::weighted_ipc_suite_with;
use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{Engine, System, SystemConfig};
use fsmc::workload::WorkloadMix;

fn fingerprint(kind: K, seed: u64) -> (Vec<f64>, u64, u64) {
    let cfg = SystemConfig::paper_default(kind);
    let mix = WorkloadMix::mix2();
    let mut sys = System::from_mix(&cfg, &mix, seed);
    let stats = sys.run_cycles(10_000);
    (stats.ipcs(), stats.reads_completed, stats.mc.row_hits + stats.mc.row_misses)
}

#[test]
fn all_policies_are_bit_deterministic() {
    for kind in [
        K::Baseline,
        K::BaselinePrefetch,
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::FsTripleAlternation,
        K::TpBankPartitioned { turn: 60 },
        K::TpNoPartition { turn: 172 },
    ] {
        assert_eq!(fingerprint(kind, 3), fingerprint(kind, 3), "{kind} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(K::Baseline, 3);
    let b = fingerprint(K::Baseline, 4);
    assert_ne!(a, b, "seeds should change the workload");
}

/// The tentpole guarantee: the parallel experiment engine produces
/// byte-identical rendered tables and CSVs at any worker count.
#[test]
fn suite_output_is_byte_identical_across_thread_counts() {
    let mixes = [WorkloadMix::mix1(), WorkloadMix::mix2()];
    let kinds = [K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }];
    let t1 = weighted_ipc_suite_with(&Engine::with_threads(1), &mixes, &kinds, 4_000, 11, &[]);
    let t8 = weighted_ipc_suite_with(&Engine::with_threads(8), &mixes, &kinds, 4_000, 11, &[]);
    assert_eq!(t1.render("weighted IPC"), t8.render("weighted IPC"));
    assert_eq!(t1.to_csv(), t8.to_csv());
}
