//! Determinism: simulations are exactly reproducible given a seed — the
//! property that makes the non-interference comparisons meaningful.
//!
//! This includes the event-driven fast path: time-skipping must produce
//! *bit-identical* statistics, command logs and execution profiles to
//! per-cycle stepping for every scheduler, or it is not an optimisation
//! but a different simulator.

use fsmc::bench::weighted_ipc_suite_with;
use fsmc::core::sched::SchedulerKind as K;
use fsmc::dram::command::TimedCommand;
use fsmc::dram::DeviceGeneration;
use fsmc::sim::{Engine, ExperimentJob, FaultPlan, System, SystemConfig};
use fsmc::workload::WorkloadMix;

fn fingerprint(kind: K, seed: u64) -> (Vec<f64>, u64, u64) {
    let cfg = SystemConfig::paper_default(kind);
    let mix = WorkloadMix::mix2();
    let mut sys = System::from_mix(&cfg, &mix, seed);
    let stats = sys.run_cycles(10_000);
    (stats.ipcs(), stats.reads_completed, stats.mc.row_hits + stats.mc.row_misses)
}

#[test]
fn all_policies_are_bit_deterministic() {
    for kind in [
        K::Baseline,
        K::BaselinePrefetch,
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::FsTripleAlternation,
        K::TpBankPartitioned { turn: 60 },
        K::TpNoPartition { turn: 172 },
    ] {
        assert_eq!(fingerprint(kind, 3), fingerprint(kind, 3), "{kind} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(K::Baseline, 3);
    let b = fingerprint(K::Baseline, 4);
    assert_ne!(a, b, "seeds should change the workload");
}

/// Every scheduler kind the simulator can build.
fn all_kinds() -> [K; 13] {
    [
        K::Baseline,
        K::BaselinePrefetch,
        K::FsRankPartitioned,
        K::FsRankPartitionedPrefetch,
        K::FsBankPartitioned,
        K::FsReorderedBankPartitioned,
        K::FsNoPartitionNaive,
        K::FsTripleAlternation,
        K::TpBankPartitioned { turn: 60 },
        K::TpNoPartition { turn: 172 },
        K::TpFence { period: 300 },
        K::ChannelPartitioned,
        K::FsMultiChannel { channels: 4 },
    ]
}

/// Runs `cycles` DRAM cycles of mix2 under `kind` with command
/// recording and the online monitor armed, with or without the
/// event-driven fast path, and returns everything observable: the full
/// statistics snapshot and the command log.
fn run_both_ways(kind: K, seed: u64, cycles: u64, fast: bool) -> (String, Vec<TimedCommand>) {
    run_both_ways_on(DeviceGeneration::Ddr3_1600, kind, seed, cycles, fast)
}

fn run_both_ways_on(
    device: DeviceGeneration,
    kind: K,
    seed: u64,
    cycles: u64,
    fast: bool,
) -> (String, Vec<TimedCommand>) {
    let mut cfg = SystemConfig::for_device(device, kind, 8);
    cfg.record_commands = true;
    cfg.monitor = true;
    let mix = WorkloadMix::mix2();
    let mut sys = System::from_mix(&cfg, &mix, seed);
    if !fast {
        sys.disable_fastpath();
    }
    let stats = sys.try_run_cycles(cycles).expect("clean run");
    (format!("{stats:?}"), sys.take_command_log())
}

/// The fast path's contract: skipping time changes nothing observable.
/// Statistics (per-core cycle and stall counts included) and the full
/// command log must be bit-identical for every policy and seed.
#[test]
fn fast_path_is_bit_identical_for_every_policy() {
    for kind in all_kinds() {
        for seed in [3, 7, 11] {
            let fast = run_both_ways(kind, seed, 8_000, true);
            let slow = run_both_ways(kind, seed, 8_000, false);
            assert_eq!(fast.0, slow.0, "{kind} seed {seed}: stats diverge");
            assert_eq!(fast.1, slow.1, "{kind} seed {seed}: command logs diverge");
        }
    }
}

/// The same contract on every device generation: the fast path's
/// `next_event_bound` folds the bank-group CAS floors and the LPDDR4/HBM
/// timing extremes into its skip bounds, so a single missed wake-up on
/// any profile would surface here as a stats or command-log diff.
#[test]
fn fast_path_is_bit_identical_on_every_device_generation() {
    for device in DeviceGeneration::all() {
        for kind in [
            K::Baseline,
            K::FsRankPartitioned,
            K::FsBankPartitioned,
            K::FsReorderedBankPartitioned,
            K::TpBankPartitioned { turn: 60 },
        ] {
            let fast = run_both_ways_on(device, kind, 3, 8_000, true);
            let slow = run_both_ways_on(device, kind, 3, 8_000, false);
            assert_eq!(fast.0, slow.0, "{device} {kind}: stats diverge");
            assert_eq!(fast.1, slow.1, "{device} {kind}: command logs diverge");
        }
    }
}

/// Execution profiles — the paper's attacker observable — must also be
/// unaffected: a bucket boundary landing one cycle off would fabricate
/// or mask leakage.
#[test]
fn fast_path_preserves_execution_profiles_and_read_runs() {
    for kind in [K::FsRankPartitioned, K::Baseline, K::TpBankPartitioned { turn: 60 }] {
        let cfg = SystemConfig::paper_default(kind);
        let mix = WorkloadMix::mix1();
        let mut fast = System::from_mix(&cfg, &mix, 5);
        let mut slow = System::from_mix(&cfg, &mix, 5);
        slow.disable_fastpath();
        assert_eq!(
            fast.run_profile(0, 500, 12),
            slow.run_profile(0, 500, 12),
            "{kind}: profiles diverge"
        );
        let mut fast = System::from_mix(&cfg, &mix, 6);
        let mut slow = System::from_mix(&cfg, &mix, 6);
        slow.disable_fastpath();
        fast.observe(0);
        slow.observe(0);
        let sf = fast.run_reads(600);
        let ss = slow.run_reads(600);
        assert_eq!(format!("{sf:?}"), format!("{ss:?}"), "{kind}: read-run stats diverge");
        assert_eq!(fast.take_observations(), slow.take_observations(), "{kind}: observations");
        assert_eq!(fast.dram_cycle(), slow.dram_cycle(), "{kind}: end cycles diverge");
    }
}

/// `FSMC_NO_FASTPATH=1` is the escape hatch; mutable controller access
/// and armed fault plans drop to per-cycle stepping automatically.
#[test]
fn fast_path_disarms_on_env_mutation_and_faults() {
    let cfg = SystemConfig::paper_default(K::FsRankPartitioned);
    let mix = WorkloadMix::mix1();
    std::env::set_var("FSMC_NO_FASTPATH", "1");
    let sys = System::from_mix(&cfg, &mix, 1);
    std::env::remove_var("FSMC_NO_FASTPATH");
    assert!(!sys.fastpath_enabled(), "FSMC_NO_FASTPATH=1 must force per-cycle stepping");

    let mut sys = System::from_mix(&cfg, &mix, 1);
    assert!(sys.fastpath_enabled(), "fast path is the default");
    let _ = sys.controller_mut();
    assert!(!sys.fastpath_enabled(), "controller mutation must disarm the fast path");

    // A faulted job runs per-cycle, and stays deterministic.
    let plan = FaultPlan::parse_spec(9, "delay(50,5,1)").expect("valid spec");
    let job = ExperimentJob::new(mix, K::FsRankPartitioned, 6_000, 3).with_faults(plan);
    let a = job.run();
    let b = job.run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "faulted runs must be reproducible");
}

/// The tentpole guarantee: the parallel experiment engine produces
/// byte-identical rendered tables and CSVs at any worker count.
#[test]
fn suite_output_is_byte_identical_across_thread_counts() {
    let mixes = [WorkloadMix::mix1(), WorkloadMix::mix2()];
    let kinds = [K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }];
    let t1 = weighted_ipc_suite_with(&Engine::with_threads(1), &mixes, &kinds, 4_000, 11, &[]);
    let t8 = weighted_ipc_suite_with(&Engine::with_threads(8), &mixes, &kinds, 4_000, 11, &[]);
    assert_eq!(t1.render("weighted IPC"), t8.render("weighted IPC"));
    assert_eq!(t1.to_csv(), t8.to_csv());
}
