//! End-to-end fault-injection checks: a faulted policy run yields a
//! structured error in its suite slot (never a panic, never a wedged
//! suite), a bounded fault degrades the pipeline onto the conservative
//! schedule visibly in the stats, and lost commands are diagnosed by the
//! starvation watchdog.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{
    run_mix_faulted, run_mix_suite_faulted, FaultKind, FaultPlan, FsmcError, TimingField,
};
use fsmc::workload::{BenchProfile, WorkloadMix};

#[test]
fn faulted_runs_fail_structurally_while_clean_runs_complete() {
    let mix = WorkloadMix::rate(BenchProfile::milc(), 8);
    let kinds = [K::FsRankPartitioned, K::FsBankPartitioned, K::FsReorderedBankPartitioned];
    let faults = [
        // Device refresh 40x slower than certified: absorbs for a while,
        // then collides with the refresh cadence and poisons.
        (K::FsBankPartitioned, FaultPlan::new(1).with(FaultKind::StretchRefresh { factor: 40 })),
        // Every third record of core 0's trace is garbage.
        (
            K::FsReorderedBankPartitioned,
            FaultPlan::new(2).with(FaultKind::CorruptTrace { core: 0, period: 3 }),
        ),
    ];
    let suite = run_mix_suite_faulted(&mix, &kinds, 15_000, 42, &faults);

    // The unfaulted runs complete.
    let base = suite.baseline.as_ref().expect("baseline must complete");
    assert!(base.stats.reads_completed > 0);
    assert!(suite.runs[0].1.as_ref().expect("clean FS_RP run").stats.reads_completed > 0);

    // The faulted runs fail with the right error, in their own slots.
    match &suite.runs[1].1 {
        Err(FsmcError::Timing(t)) => {
            assert_eq!(t.scheduler, K::FsBankPartitioned);
            let msg = t.to_string();
            assert!(msg.contains("poisoned"), "{msg}");
        }
        other => panic!("stretched tRFC should poison FS_BP, got {other:?}"),
    }
    match &suite.runs[2].1 {
        Err(FsmcError::Trace(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("line"), "{msg}");
        }
        other => panic!("corrupted trace should fail the load, got {other:?}"),
    }
    assert_eq!(suite.failures().len(), 2);
}

#[test]
fn bounded_delay_degrades_onto_the_conservative_pipeline() {
    // One 5-cycle command slip on the tight rank-partitioned pitch: the
    // controller repairs itself onto the conservative schedule and the
    // downgrade is visible in the stats.
    let mix = WorkloadMix::rate(BenchProfile::milc(), 8);
    let plan = FaultPlan::new(3).with(FaultKind::DelayCommand { period: 50, delay: 5, max: 1 });
    let r = run_mix_faulted(&mix, K::FsRankPartitioned, 25_000, 42, &plan)
        .expect("bounded fault must not kill the run");
    assert!(r.stats.mc.degraded, "degradation must be recorded");
    assert_eq!(r.stats.mc.injected_faults, 1);
    assert!(r.stats.mc.timing_faults >= 1);
    assert!(r.stats.mc.solver_fallbacks >= 1);
    // The degraded pipeline keeps serving requests.
    assert!(r.stats.reads_completed > 100, "reads {}", r.stats.reads_completed);
}

#[test]
fn dropped_commands_starve_the_cores_and_wake_the_watchdog() {
    // Unbounded command drops: lost primary reads block ROB retirement
    // core by core until nothing retires; the watchdog must diagnose the
    // stall rather than let the run spin forever.
    let mix = WorkloadMix::rate(BenchProfile::libquantum(), 8);
    let plan = FaultPlan::new(4).with(FaultKind::DropCommand { period: 3, max: 0 });
    match run_mix_faulted(&mix, K::FsRankPartitioned, 150_000, 42, &plan) {
        Err(FsmcError::Watchdog(w)) => {
            assert!(w.stalled_for > 20_000, "stall {}", w.stalled_for);
            assert!(w.domain < 8);
            assert!(w.outstanding >= 1);
            let msg = w.to_string();
            assert!(msg.contains("domain") && msg.contains("rank"), "{msg}");
        }
        other => panic!("expected a watchdog diagnosis, got {other:?}"),
    }
}

#[test]
fn infeasible_perturbed_timing_surfaces_as_a_solve_error() {
    // +600 cycles of rank-to-rank turnaround exceeds even the
    // conservative pipeline's search bound (a moderate perturbation is
    // instead absorbed by a wider certified pitch): construction fails
    // with a typed solver error rather than a panic.
    let mix = WorkloadMix::rate(BenchProfile::astar(), 8);
    let plan =
        FaultPlan::new(5).with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: 600 });
    match run_mix_faulted(&mix, K::FsRankPartitioned, 5_000, 42, &plan) {
        Err(FsmcError::Solve(_)) => {}
        other => panic!("expected a solve error, got {other:?}"),
    }
}
