//! Diagnostics-footer ordering: failed cells render in slot order — row
//! by row, column by column, exactly as the table is laid out — and the
//! whole rendering is byte-identical at any `FSMC_THREADS`, so a footer
//! never reshuffles between runs or machines.

use fsmc::bench::weighted_ipc_suite_with;
use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{Engine, FaultKind, FaultPlan, TimingField};
use fsmc::workload::{BenchProfile, WorkloadMix};

/// A suite where the FS column fails on every mix (infeasible perturbed
/// timing rejects the pipeline at construction). The mixes are declared
/// in deliberately non-alphabetical order so slot order and lexical
/// order disagree.
fn failing_table(threads: usize) -> String {
    let mixes = [
        WorkloadMix::rate(BenchProfile::zeusmp(), 8),
        WorkloadMix::rate(BenchProfile::milc(), 8),
        WorkloadMix::rate(BenchProfile::astar(), 8),
    ];
    let kinds = [K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }];
    let infeasible =
        FaultPlan::new(5).with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: 600 });
    let table = weighted_ipc_suite_with(
        &Engine::with_threads(threads),
        &mixes,
        &kinds,
        4_000,
        42,
        &[(K::FsRankPartitioned, infeasible)],
    );
    table.render("weighted IPC")
}

#[test]
fn diagnostics_footer_is_slot_ordered_and_thread_count_stable() {
    let serial = failing_table(1);
    let parallel = failing_table(8);
    assert_eq!(serial, parallel, "rendered table differs across FSMC_THREADS");
    let pos = |needle: &str| {
        serial.find(needle).unwrap_or_else(|| panic!("missing {needle:?} in:\n{serial}"))
    };
    // Slot order (zeusmp, milc, astar), not completion or lexical order.
    let (z, m, a) = (pos("zeusmp/FS_RP:"), pos("milc/FS_RP:"), pos("astar/FS_RP:"));
    assert!(z < m && m < a, "diagnostics footer not in slot order:\n{serial}");
}
