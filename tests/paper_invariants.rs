//! End-to-end checks of the paper's headline claims, wired through the
//! public facade crate.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::core::solver::{
    solve, solve_best, Anchor, PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc::dram::TimingParams;
use fsmc::sim::runner::run_mix_suite;
use fsmc::workload::{BenchProfile, WorkloadMix};

#[test]
fn section_3_and_4_pipeline_constants() {
    let t = TimingParams::ddr3_1600();
    // Section 3.1.
    assert_eq!(solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap().l, 7);
    assert_eq!(solve(&t, Anchor::FixedPeriodicRas, PartitionLevel::Rank).unwrap().l, 12);
    assert_eq!(solve(&t, Anchor::FixedPeriodicCas, PartitionLevel::Rank).unwrap().l, 12);
    // Section 4.2.
    assert_eq!(solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Bank).unwrap().l, 21);
    assert_eq!(solve(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank).unwrap().l, 15);
    // Section 4.3.
    let np = solve_best(&t, PartitionLevel::None).unwrap();
    assert_eq!((np.l, np.anchor), (43, Anchor::FixedPeriodicRas));
}

#[test]
fn interval_lengths_and_peak_utilizations() {
    let t = TimingParams::ddr3_1600();
    let rank = solve_best(&t, PartitionLevel::Rank).unwrap();
    assert_eq!(rank.interval_q(8), 56);
    assert!((rank.peak_data_utilization(&t) - 0.571).abs() < 0.001);
    let bank = solve_best(&t, PartitionLevel::Bank).unwrap();
    assert_eq!(bank.interval_q(8), 120);
    assert!((bank.peak_data_utilization(&t) - 0.267).abs() < 0.001);
    let rbp = ReorderedBpSchedule::new(&t, 8);
    assert_eq!(rbp.q(), 63);
    assert!((rbp.peak_data_utilization(&t) - 0.508).abs() < 0.001);
    let ta = SlotSchedule::triple_alternation(&t, 8).unwrap();
    assert_eq!(ta.q(), 360);
}

#[test]
fn figure_3_ordering_holds_on_a_short_run() {
    // The paper's throughput order: baseline > FS_RP > FS_ReBP > TP_BP >
    // FS_NP_Optimized and TP_NP last among these.
    let mix = WorkloadMix::rate(BenchProfile::milc(), 8);
    let kinds = [
        K::FsRankPartitioned,
        K::FsReorderedBankPartitioned,
        K::TpBankPartitioned { turn: 60 },
        K::TpNoPartition { turn: 172 },
    ];
    let (base, runs) = run_mix_suite(&mix, &kinds, 25_000, 42).expect_ok();
    let w: Vec<f64> = runs.iter().map(|r| r.weighted_ipc_vs(&base)).collect();
    assert!(w[0] < 8.0, "FS_RP {} must trail the baseline", w[0]);
    assert!(w[0] > w[1], "FS_RP {} must beat FS_ReBP {}", w[0], w[1]);
    assert!(w[1] > w[2], "FS_ReBP {} must beat TP_BP {}", w[1], w[2]);
    assert!(w[2] > w[3], "TP_BP {} must beat TP_NP {}", w[2], w[3]);
}

#[test]
fn fs_dummy_fractions_span_the_intensity_range() {
    use fsmc::sim::{System, SystemConfig};
    // libquantum saturates its slots (paper: 2.3% dummies) while
    // xalancbmk wastes most of them (paper: 87%).
    let cfg = SystemConfig::paper_default(K::FsRankPartitioned);
    let mut busy = System::homogeneous(&cfg, BenchProfile::libquantum(), 7);
    let busy_frac = busy.run_cycles(30_000).mc.dummy_fraction();
    let mut idle = System::homogeneous(&cfg, BenchProfile::xalancbmk(), 7);
    let idle_frac = idle.run_cycles(30_000).mc.dummy_fraction();
    assert!(busy_frac < 0.10, "libquantum dummy fraction {busy_frac}");
    assert!(idle_frac > 0.40, "xalancbmk dummy fraction {idle_frac}");
}

#[test]
fn tp_prefers_minimum_turn_lengths_with_bank_partitioning() {
    let mix = WorkloadMix::rate(BenchProfile::mcf(), 8);
    let kinds = [K::TpBankPartitioned { turn: 60 }, K::TpBankPartitioned { turn: 156 }];
    let (base, runs) = run_mix_suite(&mix, &kinds, 25_000, 42).expect_ok();
    let short = runs[0].weighted_ipc_vs(&base);
    let long = runs[1].weighted_ipc_vs(&base);
    assert!(short > long, "turn 60 ({short}) should beat turn 156 ({long})");
}
