//! Batched replay under `FSMC_NO_FASTPATH=1`: the batch interleave and
//! the per-cycle escape hatch compose — forcing per-cycle stepping
//! changes wall-clock time and nothing else, batched or not.
//!
//! This lives in its own test binary on purpose: the env var is
//! process-global, and the single `#[test]` here is the only code in
//! its process, so setting it cannot race another test's `System`
//! construction.

use fsmc::core::sched::SchedulerKind as K;
use fsmc::sim::{Engine, ExperimentJob, ExperimentPlan};
use fsmc::workload::WorkloadMix;

#[test]
fn batched_replay_is_byte_identical_with_fastpath_disabled() {
    let kinds = [K::Baseline, K::FsRankPartitioned, K::FsReorderedBankPartitioned];
    let mut plan = ExperimentPlan::new();
    for &k in &kinds {
        plan.push(ExperimentJob::new(WorkloadMix::mix1(), k, 6_000, 11));
    }
    let fast = format!("{:?}", Engine::with_threads(1).run(&plan));
    let fast_batched = format!("{:?}", Engine::with_threads(1).with_batch(3).run(&plan));

    std::env::set_var("FSMC_NO_FASTPATH", "1");
    let slow = format!("{:?}", Engine::with_threads(1).run(&plan));
    let slow_batched = format!("{:?}", Engine::with_threads(8).with_batch(3).run(&plan));
    std::env::remove_var("FSMC_NO_FASTPATH");

    assert_eq!(fast, fast_batched, "batching changed fast-path results");
    assert_eq!(slow, slow_batched, "batching changed per-cycle results");
    assert_eq!(fast, slow, "fast path diverged from per-cycle stepping");
}
